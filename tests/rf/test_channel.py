"""Unit tests for :mod:`repro.rf.channel` (link-level RSS composition)."""

import numpy as np
import pytest

from repro.rf.channel import ChannelConfig, LinkChannel
from repro.rf.geometry import Link, Point
from repro.rf.target import ObstructionState


@pytest.fixture()
def channel() -> LinkChannel:
    links = [
        Link(index=0, transmitter=Point(0.5, 1.0), receiver=Point(9.5, 1.0)),
        Link(index=1, transmitter=Point(0.5, 3.0), receiver=Point(9.5, 3.0)),
        Link(index=2, transmitter=Point(0.5, 5.0), receiver=Point(9.5, 5.0)),
    ]
    return LinkChannel(links, area_width=10.0, area_height=6.0, seed=5)


class TestChannelConstruction:
    def test_requires_links(self):
        with pytest.raises(ValueError):
            LinkChannel([], 10.0, 6.0)

    def test_link_count(self, channel):
        assert channel.link_count == 3

    def test_invalid_quantization_rejected(self):
        with pytest.raises(ValueError):
            ChannelConfig(rss_quantization_db=-0.5)


class TestMeanRSS:
    def test_target_on_link_reduces_rss(self, channel):
        baseline = channel.mean_rss_dbm(0, None, 0.0)
        blocked = channel.mean_rss_dbm(0, Point(5.0, 1.0), 0.0)
        assert blocked < baseline - 2.0

    def test_target_far_away_barely_changes_rss(self, channel):
        baseline = channel.mean_rss_dbm(0, None, 0.0)
        far = channel.mean_rss_dbm(0, Point(5.0, 5.0), 0.0)
        assert abs(far - baseline) < 1.0

    def test_rss_above_floor(self, channel):
        assert channel.mean_rss_dbm(0, Point(5.0, 1.0), 0.0) >= channel.config.rss_floor_dbm

    def test_long_term_drift_changes_rss(self, channel):
        now = channel.mean_rss_dbm(1, Point(5.0, 3.0), 0.0)
        later = channel.mean_rss_dbm(1, Point(5.0, 3.0), 45.0)
        assert now != later

    def test_baseline_rss_matches_mean_rss_without_target(self, channel):
        assert channel.baseline_rss_dbm(2, 0.0) == pytest.approx(
            channel.mean_rss_dbm(2, None, 0.0)
        )


class TestMeasurement:
    def test_quantization_step(self, channel):
        value = channel.measure_rss_dbm(0, Point(3.0, 1.0), 0.0)
        step = channel.config.rss_quantization_db
        assert abs(value / step - round(value / step)) < 1e-9

    def test_noiseless_measurement_matches_mean(self, channel):
        mean = channel.mean_rss_dbm(0, Point(3.0, 1.0), 0.0)
        measured = channel.measure_rss_dbm(0, Point(3.0, 1.0), 0.0, with_noise=False)
        assert measured == pytest.approx(mean, abs=channel.config.rss_quantization_db)

    def test_measure_vector_shape(self, channel):
        vector = channel.measure_vector(Point(4.0, 3.0), samples=3)
        assert vector.shape == (3,)

    def test_measure_vector_rejects_bad_samples(self, channel):
        with pytest.raises(ValueError):
            channel.measure_vector(Point(4.0, 3.0), samples=0)

    def test_averaging_reduces_variance(self, channel):
        singles = [channel.measure_vector(Point(4.0, 1.0), samples=1)[0] for _ in range(30)]
        averaged = [channel.measure_vector(Point(4.0, 1.0), samples=10)[0] for _ in range(30)]
        assert np.std(averaged) < np.std(singles) + 1e-9

    def test_obstruction_state_exposed(self, channel):
        assert channel.obstruction_state(0, Point(5.0, 1.0)) is ObstructionState.BLOCKING

    def test_time_series_length(self, channel):
        series = channel.rss_time_series(0, duration_s=10.0, sample_interval_s=0.5)
        assert series.shape == (20,)

    def test_time_series_rejects_bad_args(self, channel):
        with pytest.raises(ValueError):
            channel.rss_time_series(0, duration_s=0.0)

    def test_short_term_variation_spans_several_db(self, channel):
        # Fig. 1: ~5 dB swings over 100 s at a fixed location.
        series = channel.rss_time_series(0, 100.0, 0.5, target_location=Point(5.0, 1.0))
        assert series.max() - series.min() >= 2.0
