"""Unit tests for :mod:`repro.rf.geometry`."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rf.geometry import (
    Link,
    Point,
    bounding_box,
    first_fresnel_radius,
    make_grid_centres,
    point_segment_distance,
    projection_parameter,
    wavelength,
)

coords = st.floats(-50.0, 50.0, allow_nan=False, allow_infinity=False)


class TestPoint:
    def test_distance_symmetric(self):
        a, b = Point(0.0, 0.0), Point(3.0, 4.0)
        assert a.distance_to(b) == pytest.approx(5.0)
        assert b.distance_to(a) == pytest.approx(5.0)

    def test_as_array(self):
        np.testing.assert_allclose(Point(1.0, 2.0).as_array(), [1.0, 2.0])

    def test_translated(self):
        moved = Point(1.0, 1.0).translated(2.0, -1.0)
        assert (moved.x, moved.y) == (3.0, 0.0)

    @given(coords, coords, coords, coords)
    @settings(max_examples=50, deadline=None)
    def test_triangle_inequality(self, ax, ay, bx, by):
        origin = Point(0.0, 0.0)
        a, b = Point(ax, ay), Point(bx, by)
        assert origin.distance_to(b) <= origin.distance_to(a) + a.distance_to(b) + 1e-9


class TestWavelengthAndFresnel:
    def test_wavelength_of_2g4(self):
        assert wavelength(2.437e9) == pytest.approx(0.123, abs=0.001)

    def test_wavelength_rejects_non_positive(self):
        with pytest.raises(ValueError):
            wavelength(0.0)

    def test_fresnel_radius_zero_at_ends(self):
        assert first_fresnel_radius(0.0, 10.0, 0.12) == 0.0
        assert first_fresnel_radius(10.0, 0.0, 0.12) == 0.0

    def test_fresnel_radius_maximal_at_midpoint(self):
        length, lam = 10.0, 0.12
        mid = first_fresnel_radius(length / 2, length / 2, lam)
        off = first_fresnel_radius(2.0, 8.0, lam)
        assert mid > off

    def test_fresnel_rejects_negative_distance(self):
        with pytest.raises(ValueError):
            first_fresnel_radius(-1.0, 5.0, 0.12)

    @given(st.floats(0.0, 100.0), st.floats(0.0, 100.0))
    @settings(max_examples=50, deadline=None)
    def test_fresnel_radius_non_negative(self, d1, d2):
        assert first_fresnel_radius(d1, d2, 0.123) >= 0.0


class TestProjectionAndDistance:
    def test_projection_clipped_to_unit_interval(self):
        start, end = Point(0.0, 0.0), Point(10.0, 0.0)
        assert projection_parameter(Point(-5.0, 0.0), start, end) == 0.0
        assert projection_parameter(Point(15.0, 0.0), start, end) == 1.0
        assert projection_parameter(Point(5.0, 3.0), start, end) == pytest.approx(0.5)

    def test_degenerate_segment(self):
        point = Point(1.0, 1.0)
        assert projection_parameter(point, Point(0, 0), Point(0, 0)) == 0.0
        assert point_segment_distance(point, Point(0, 0), Point(0, 0)) == pytest.approx(
            math.sqrt(2)
        )

    def test_perpendicular_distance(self):
        start, end = Point(0.0, 0.0), Point(10.0, 0.0)
        assert point_segment_distance(Point(5.0, 2.0), start, end) == pytest.approx(2.0)

    def test_distance_beyond_endpoint(self):
        start, end = Point(0.0, 0.0), Point(10.0, 0.0)
        assert point_segment_distance(Point(13.0, 4.0), start, end) == pytest.approx(5.0)


class TestLink:
    def make_link(self) -> Link:
        return Link(index=0, transmitter=Point(0.0, 1.0), receiver=Point(10.0, 1.0))

    def test_length_and_midpoint(self):
        link = self.make_link()
        assert link.length == pytest.approx(10.0)
        assert (link.midpoint().x, link.midpoint().y) == (5.0, 1.0)

    def test_along_fraction(self):
        link = self.make_link()
        assert link.along_fraction(Point(2.5, 5.0)) == pytest.approx(0.25)

    def test_distance_from(self):
        link = self.make_link()
        assert link.distance_from(Point(5.0, 4.0)) == pytest.approx(3.0)

    def test_fresnel_radius_midpoint_largest(self):
        link = self.make_link()
        mid = link.fresnel_radius_at(Point(5.0, 1.0))
        end = link.fresnel_radius_at(Point(1.0, 1.0))
        assert mid > end > 0.0


class TestGrid:
    def test_grid_count(self):
        centres = make_grid_centres(3.0, 2.0, 1.0)
        assert len(centres) == 6

    def test_grid_excluded_rectangle(self):
        centres = make_grid_centres(3.0, 1.0, 1.0, excluded=[(0.0, 0.0, 1.0, 1.0)])
        assert len(centres) == 2

    def test_grid_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            make_grid_centres(0.0, 2.0, 1.0)

    def test_bounding_box(self):
        box = bounding_box([Point(0.0, 1.0), Point(2.0, -1.0)])
        assert box == (0.0, -1.0, 2.0, 1.0)

    def test_bounding_box_empty_raises(self):
        with pytest.raises(ValueError):
            bounding_box([])
