"""Unit tests for :mod:`repro.rf.multipath`."""

import pytest

from repro.rf.geometry import Link, Point
from repro.rf.multipath import MultipathConfig, MultipathField


@pytest.fixture()
def link() -> Link:
    return Link(index=0, transmitter=Point(0.0, 2.0), receiver=Point(10.0, 2.0))


class TestMultipathConfig:
    def test_defaults_valid(self):
        MultipathConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"scatterer_count": -1},
            {"strength_std_db": -0.1},
            {"interaction_range_m": 0.0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            MultipathConfig(**kwargs)


class TestMultipathField:
    def test_scatterer_count_respected(self):
        field = MultipathField(MultipathConfig(scatterer_count=7), 10.0, 8.0, rng=1)
        assert len(field.scatterers) == 7

    def test_scatterers_inside_area(self):
        field = MultipathField(MultipathConfig(scatterer_count=20), 10.0, 8.0, rng=1)
        for scatterer in field.scatterers:
            assert 0.0 <= scatterer.position.x <= 10.0
            assert 0.0 <= scatterer.position.y <= 8.0

    def test_reproducible_with_seed(self, link):
        a = MultipathField(MultipathConfig(), 10.0, 8.0, rng=4).static_offset_db(link)
        b = MultipathField(MultipathConfig(), 10.0, 8.0, rng=4).static_offset_db(link)
        assert a == b

    def test_empty_field_contributes_nothing(self, link):
        field = MultipathField(MultipathConfig(scatterer_count=0), 10.0, 8.0, rng=1)
        assert field.static_offset_db(link) == 0.0
        assert field.target_offset_db(link, Point(5.0, 2.0)) == 0.0

    def test_target_offset_decays_with_distance(self, link):
        field = MultipathField(MultipathConfig(scatterer_count=15), 10.0, 8.0, rng=2)
        near_total = sum(
            abs(field.target_offset_db(link, Point(x, 2.0))) for x in range(1, 10)
        )
        far_total = sum(
            abs(field.target_offset_db(link, Point(x, 7.5))) for x in range(1, 10)
        )
        assert near_total > far_total

    def test_richer_field_larger_perturbation(self, link):
        poor = MultipathField(MultipathConfig(scatterer_count=2), 10.0, 8.0, rng=3)
        rich = MultipathField(MultipathConfig(scatterer_count=40), 10.0, 8.0, rng=3)
        target = Point(4.0, 2.5)
        assert abs(rich.target_offset_db(link, target)) >= abs(
            poor.target_offset_db(link, target)
        ) * 0.5  # richer fields are not guaranteed larger pointwise, but same order

    def test_invalid_area_rejected(self):
        with pytest.raises(ValueError):
            MultipathField(MultipathConfig(), 0.0, 5.0, rng=1)
