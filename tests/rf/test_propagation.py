"""Unit tests for :mod:`repro.rf.propagation`."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rf.propagation import PathLossModel, PropagationConfig, free_space_path_loss


class TestFreeSpacePathLoss:
    def test_increases_with_distance(self):
        assert free_space_path_loss(10.0, 2.4e9) > free_space_path_loss(1.0, 2.4e9)

    def test_6db_per_distance_doubling(self):
        difference = free_space_path_loss(8.0, 2.4e9) - free_space_path_loss(4.0, 2.4e9)
        assert difference == pytest.approx(6.02, abs=0.1)

    def test_rejects_non_positive_frequency(self):
        with pytest.raises(ValueError):
            free_space_path_loss(1.0, 0.0)

    def test_minimum_distance_clamped(self):
        assert free_space_path_loss(0.0, 2.4e9) == free_space_path_loss(0.005, 2.4e9)


class TestPropagationConfig:
    def test_defaults_valid(self):
        config = PropagationConfig()
        assert config.path_loss_exponent > 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"path_loss_exponent": 0.0},
            {"reference_distance_m": 0.0},
            {"shadowing_std_db": -1.0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            PropagationConfig(**kwargs)


class TestPathLossModel:
    def test_path_loss_monotone_in_distance(self):
        model = PathLossModel(PropagationConfig(), rng=1)
        losses = [model.path_loss_db(d) for d in (1.0, 2.0, 5.0, 10.0, 20.0)]
        assert all(a < b for a, b in zip(losses, losses[1:]))

    def test_shadowing_cached_per_link(self):
        model = PathLossModel(PropagationConfig(), rng=1)
        assert model.shadowing_db(3) == model.shadowing_db(3)

    def test_shadowing_differs_across_links(self):
        model = PathLossModel(PropagationConfig(shadowing_std_db=3.0), rng=1)
        values = {model.shadowing_db(i) for i in range(6)}
        assert len(values) > 1

    def test_baseline_rss_below_tx_power(self):
        config = PropagationConfig(tx_power_dbm=20.0, shadowing_std_db=0.0)
        model = PathLossModel(config, rng=1)
        assert model.baseline_rss_dbm(10.0) < config.tx_power_dbm

    def test_reproducible_with_seed(self):
        a = PathLossModel(PropagationConfig(), rng=5).baseline_rss_dbm(8.0, 2)
        b = PathLossModel(PropagationConfig(), rng=5).baseline_rss_dbm(8.0, 2)
        assert a == b

    @given(st.floats(1.0, 50.0), st.floats(1.5, 4.0))
    @settings(max_examples=40, deadline=None)
    def test_higher_exponent_means_more_loss(self, distance, exponent):
        low = PathLossModel(PropagationConfig(path_loss_exponent=exponent), rng=1)
        high = PathLossModel(PropagationConfig(path_loss_exponent=exponent + 0.5), rng=1)
        assert high.path_loss_db(distance) >= low.path_loss_db(distance) - 1e-9
