"""Unit tests for :mod:`repro.rf.target` (human obstruction model)."""

import pytest

from repro.rf.geometry import Link, Point
from repro.rf.target import ObstructionState, TargetConfig, TargetModel


@pytest.fixture()
def link() -> Link:
    return Link(index=0, transmitter=Point(0.0, 0.0), receiver=Point(10.0, 0.0))


@pytest.fixture()
def model() -> TargetModel:
    return TargetModel(TargetConfig())


class TestObstructionState:
    def test_on_path_is_blocking(self, model, link):
        assert model.obstruction_state(link, Point(3.0, 0.0)) is ObstructionState.BLOCKING

    def test_far_away_is_outside(self, model, link):
        assert model.obstruction_state(link, Point(5.0, 5.0)) is ObstructionState.OUTSIDE

    def test_near_path_is_fresnel(self, model, link):
        # Slightly off the direct path but within the expanded Fresnel margin.
        state = model.obstruction_state(link, Point(5.0, 0.6))
        assert state in (ObstructionState.FRESNEL, ObstructionState.BLOCKING)
        assert state is not ObstructionState.OUTSIDE


class TestAttenuation:
    def test_blocking_larger_than_fresnel(self, model, link):
        blocking = model.attenuation_db(link, Point(2.0, 0.0))
        fresnel = model.attenuation_db(link, Point(2.0, 0.7))
        outside = model.attenuation_db(link, Point(2.0, 5.0))
        assert blocking > fresnel > outside

    def test_outside_attenuation_negligible(self, model, link):
        assert model.attenuation_db(link, Point(5.0, 6.0)) <= 0.1

    def test_stronger_near_transceiver_than_midpoint(self, model, link):
        near_tx = model.attenuation_db(link, Point(1.0, 0.0))
        midpoint = model.attenuation_db(link, Point(5.0, 0.0))
        assert near_tx > midpoint

    def test_asymmetry_tx_side_stronger(self, link):
        model = TargetModel(TargetConfig(asymmetry=0.4))
        tx_side = model.attenuation_db(link, Point(2.0, 0.0))
        rx_side = model.attenuation_db(link, Point(8.0, 0.0))
        assert tx_side > rx_side

    def test_zero_asymmetry_is_symmetric(self, link):
        model = TargetModel(TargetConfig(asymmetry=0.0))
        tx_side = model.attenuation_db(link, Point(2.0, 0.0))
        rx_side = model.attenuation_db(link, Point(8.0, 0.0))
        assert tx_side == pytest.approx(rx_side, abs=1e-6)

    def test_attenuation_always_positive(self, model, link):
        for x in (0.5, 2.5, 5.0, 7.5, 9.5):
            for y in (0.0, 0.3, 1.0, 3.0):
                assert model.attenuation_db(link, Point(x, y)) > 0.0


class TestTargetConfigValidation:
    def test_default_is_valid(self):
        TargetConfig()

    def test_rejects_blocking_below_midpoint(self):
        with pytest.raises(ValueError):
            TargetConfig(blocking_attenuation_db=2.0, midpoint_attenuation_db=4.0)

    def test_rejects_small_fresnel_margin(self):
        with pytest.raises(ValueError):
            TargetConfig(fresnel_margin=0.5)

    def test_rejects_non_positive_body(self):
        with pytest.raises(ValueError):
            TargetConfig(body_radius_m=0.0)

    def test_rejects_extreme_asymmetry(self):
        with pytest.raises(ValueError):
            TargetConfig(asymmetry=1.5)
