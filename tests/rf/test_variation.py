"""Unit tests for :mod:`repro.rf.variation` (short/long-term RSS dynamics)."""

import numpy as np
import pytest

from repro.rf.geometry import Point
from repro.rf.variation import LongTermDrift, ShortTermNoise, VariationConfig


class TestVariationConfig:
    def test_defaults_valid(self):
        VariationConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"short_term_correlation": 1.0},
            {"outlier_probability": 1.5},
            {"short_term_std_db": -1.0},
            {"drift_time_constant_days": 0.0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            VariationConfig(**kwargs)


class TestShortTermNoise:
    def test_burst_length(self):
        noise = ShortTermNoise(VariationConfig(), rng=1)
        assert noise.sample_burst(20).shape == (20,)

    def test_burst_rejects_non_positive(self):
        noise = ShortTermNoise(VariationConfig(), rng=1)
        with pytest.raises(ValueError):
            noise.sample_burst(0)

    def test_zero_mean_on_average(self):
        noise = ShortTermNoise(VariationConfig(outlier_probability=0.0), rng=1)
        samples = noise.sample_burst(4000)
        assert abs(samples.mean()) < 0.3

    def test_autocorrelation_positive(self):
        config = VariationConfig(short_term_correlation=0.9, outlier_probability=0.0)
        noise = ShortTermNoise(config, rng=2)
        samples = noise.sample_burst(2000)
        lagged = np.corrcoef(samples[:-1], samples[1:])[0, 1]
        assert lagged > 0.5

    def test_reset_clears_state(self):
        noise = ShortTermNoise(VariationConfig(), rng=3)
        noise.sample_burst(10)
        noise.reset()
        assert noise._state == 0.0

    def test_span_of_100s_burst_is_several_db(self):
        # Fig. 1: variations within 100 s can reach ~5 dB.
        noise = ShortTermNoise(VariationConfig(), rng=4)
        samples = noise.sample_burst(200)
        assert samples.max() - samples.min() > 2.0


class TestLongTermDrift:
    def test_zero_at_time_zero(self):
        drift = LongTermDrift(VariationConfig(), seed=1)
        assert drift.total_shift_db(0, Point(1.0, 1.0), 0.0) == pytest.approx(0.0)

    def test_grows_with_time(self):
        drift = LongTermDrift(VariationConfig(), seed=1)
        short = abs(drift.global_shift_db(3.0))
        long = abs(drift.global_shift_db(90.0))
        assert long > short

    def test_deterministic_per_seed_and_time(self):
        a = LongTermDrift(VariationConfig(), seed=9)
        b = LongTermDrift(VariationConfig(), seed=9)
        point = Point(2.0, 3.0)
        assert a.total_shift_db(1, point, 45.0) == b.total_shift_db(1, point, 45.0)

    def test_different_seeds_differ(self):
        point = Point(2.0, 3.0)
        a = LongTermDrift(VariationConfig(), seed=1).total_shift_db(0, point, 45.0)
        b = LongTermDrift(VariationConfig(), seed=2).total_shift_db(0, point, 45.0)
        assert a != b

    def test_negative_time_rejected(self):
        drift = LongTermDrift(VariationConfig(), seed=1)
        with pytest.raises(ValueError):
            drift.global_shift_db(-1.0)

    def test_spatial_drift_smooth_for_neighbours(self):
        # Nearby locations must receive nearly identical spatial shifts so
        # that neighbouring-location differences stay stable (Observation 2).
        drift = LongTermDrift(VariationConfig(), seed=3)
        a = drift.spatial_shift_db(Point(4.0, 2.0), 45.0)
        b = drift.spatial_shift_db(Point(4.3, 2.0), 45.0)
        far = drift.spatial_shift_db(Point(9.0, 7.0), 45.0)
        assert abs(a - b) < 0.6
        assert abs(a - b) <= abs(a - far) + 0.6

    def test_link_drift_varies_by_link(self):
        drift = LongTermDrift(VariationConfig(), seed=3)
        shifts = {drift.link_shift_db(i, 45.0) for i in range(6)}
        assert len(shifts) > 1
