"""Distributed scatter-gather execution must be invisible in the results.

The acceptance bar of the executor subsystem: refreshing a 128-site
synthetic fleet through ``ProcessExecutor`` with any worker count {1, 2, 4}
produces a fleet report **bit-identical** to ``SerialExecutor`` — same
estimates, same sweep counts, same executed plan — because workers
rehydrate their shards from the exact wire bytes, re-run the deterministic
preparation path from the request seeds, and batched LU factorises each
slice independently.
"""

import numpy as np
import pytest

from repro.core.self_augmented import SelfAugmentedConfig
from repro.core.updater import UpdaterConfig
from repro.service.executor import (
    PooledProcessExecutor,
    ProcessExecutor,
    SerialExecutor,
    ShardExecutor,
    _solve_shard_payload,
    resolve_executor,
)
from repro.io import requests_from_bytes, requests_to_bytes
from repro.service.service import UpdateService
from repro.service.shard import ShardConfig
from repro.service.synthetic import synthesize_fleet

FLEET_SITES = 128
SHARD_BUDGET = 16 * 1024  # forces a dozen-ish shards at this fleet size


@pytest.fixture(scope="module")
def fleet_requests():
    """A 128-site synthetic fleet with two factorisation ranks (CI-sized)."""
    return synthesize_fleet(
        FLEET_SITES,
        elapsed_days=45.0,
        seed=11,
        link_count=(3, 4),
        locations_per_link=3,
        updater=UpdaterConfig(solver=SelfAugmentedConfig(max_iterations=6)),
    )


@pytest.fixture(scope="module")
def serial_refresh(fleet_requests):
    service = UpdateService()
    reports = service.update_fleet(
        fleet_requests, shards=ShardConfig(max_stack_bytes=SHARD_BUDGET)
    )
    return service.last_plan, reports


class TestProcessExecutorParity:
    """ISSUE 5 acceptance: workers {1, 2, 4} bit-identical to serial."""

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_worker_counts_bit_identical_to_serial(
        self, fleet_requests, serial_refresh, workers
    ):
        serial_plan, serial_reports = serial_refresh
        service = UpdateService()
        reports = service.update_fleet(
            fleet_requests,
            shards=ShardConfig(max_stack_bytes=SHARD_BUDGET),
            executor=ProcessExecutor(workers),
        )
        assert len(reports) == FLEET_SITES
        for expected, got in zip(serial_reports, reports):
            assert got.site == expected.site
            np.testing.assert_array_equal(
                got.estimate,
                expected.estimate,
                err_msg=f"{workers}-worker estimate diverged for {got.site}",
            )
            np.testing.assert_array_equal(
                got.result.solver.left, expected.result.solver.left
            )
            np.testing.assert_array_equal(
                got.result.solver.right, expected.result.solver.right
            )
            assert got.sweeps == expected.sweeps
            assert got.converged == expected.converged
        # The executed plan must also match shard for shard: same members,
        # same sweep counts, no fallbacks.
        assert service.last_plan.shard_count == serial_plan.shard_count
        for ours, theirs in zip(service.last_plan.shards, serial_plan.shards):
            assert ours.members == theirs.members
            assert ours.sweeps == theirs.sweeps
            assert not ours.fallback

    def test_unsharded_plan_also_scatters(self, fleet_requests, serial_refresh):
        """shards=None (one shard per rank group) still round-trips workers."""
        _, serial_reports = serial_refresh
        service = UpdateService()
        reports = service.update_fleet(
            fleet_requests, executor=ProcessExecutor(2)
        )
        assert service.last_plan.shard_count == 2  # two ranks, unbounded
        for expected, got in zip(serial_reports, reports):
            np.testing.assert_array_equal(got.estimate, expected.estimate)

    def test_executor_recorded_on_service(self, fleet_requests):
        service = UpdateService()
        executor = ProcessExecutor(3)
        service.update_fleet(fleet_requests[:4], executor=executor)
        assert service.last_executor is executor
        assert service.last_executor.name == "process"
        assert service.last_executor.workers == 3


class TestWorkerPayloadPath:
    def test_requests_round_trip_in_memory(self, fleet_requests):
        payload = requests_to_bytes(fleet_requests[:3])
        assert isinstance(payload, bytes)
        restored = requests_from_bytes(payload)
        assert [r.site for r in restored] == [r.site for r in fleet_requests[:3]]
        for original, loaded in zip(fleet_requests[:3], restored):
            np.testing.assert_array_equal(
                loaded.no_decrease_matrix, original.no_decrease_matrix
            )
            np.testing.assert_array_equal(
                loaded.baseline.values, original.baseline.values
            )
            assert loaded.rng == original.rng
            assert loaded.config == original.config

    def test_worker_function_matches_in_process_solve(self, fleet_requests):
        """The pool-side entry point is the same solve, byte for byte."""
        from repro.service.prepare import prepare_request
        from repro.core.stacked import solve_shard

        subset = [r for r in fleet_requests[:6] if r.baseline.link_count == 3]
        local = solve_shard([prepare_request(r).state for r in subset])
        remote = _solve_shard_payload(requests_to_bytes(subset), shard_index=0)
        assert remote.sweeps == local.sweeps
        assert not remote.fallback
        for ours, theirs in zip(remote.results, local.results):
            np.testing.assert_array_equal(ours.estimate, theirs.estimate)

    def test_correlation_free_requests_still_bit_identical(self, fleet_requests):
        """Requests without precomputed MIC/LRR scatter bit-identically: the
        coordinator attaches its own correlation results to the payload, so
        workers neither recompute the ingest stage nor diverge from it."""
        from dataclasses import replace

        stripped = [replace(r, correlation=None) for r in fleet_requests[:6]]
        serial = UpdateService().update_fleet(stripped)
        scattered = UpdateService().update_fleet(
            stripped, executor=ProcessExecutor(2)
        )
        for expected, got in zip(serial, scattered):
            np.testing.assert_array_equal(got.estimate, expected.estimate)
            assert got.result.mic.indices == expected.result.mic.indices

    def test_scatter_request_attaches_coordinator_correlation(
        self, fleet_requests
    ):
        from dataclasses import replace

        from repro.service.prepare import prepare_request

        bare = replace(fleet_requests[0], correlation=None)
        site = prepare_request(bare)
        scattered = ProcessExecutor._scatter_request(site)
        assert scattered.correlation == (site.mic, site.lrr)
        # Requests that already carry one pass through untouched.
        carried = prepare_request(fleet_requests[0])
        assert ProcessExecutor._scatter_request(carried) is fleet_requests[0]

    def test_live_generator_seed_rejected(self, fleet_requests):
        from dataclasses import replace

        request = replace(fleet_requests[0], rng=np.random.default_rng(1))
        with pytest.raises(ValueError, match="integer seed"):
            UpdateService().update_fleet([request], executor=ProcessExecutor(1))

    def test_none_seed_rejected(self, fleet_requests):
        """rng=None is legal serially but a worker could not reproduce it."""
        from dataclasses import replace

        request = replace(fleet_requests[0], rng=None)
        with pytest.raises(ValueError, match="integer seed"):
            UpdateService().update_fleet([request], executor=ProcessExecutor(1))
        # ... while the serial default still accepts it.
        reports = UpdateService().update_fleet([request])
        assert reports[0].site == request.site

    def test_seed_error_names_offending_site(self, fleet_requests):
        """ISSUE 9 satellite: the non-integer-seed error must say *which*
        site cannot be scattered, not just that one exists."""
        from dataclasses import replace

        request = replace(
            fleet_requests[0], rng=np.random.default_rng(1), site="flaky-site"
        )
        with pytest.raises(ValueError, match="flaky-site"):
            UpdateService().update_fleet([request], executor=ProcessExecutor(1))


class TestWorkerFailureContext:
    """ISSUE 8 satellite: worker-side failures must name the shard's sites."""

    def test_worker_failure_names_shard_sites(self, fleet_requests, monkeypatch):
        """A worker that dies rehydrating its payload raises with the site
        ids of the failing shard, not just a bare pool traceback."""
        import repro.io.wire as wire

        monkeypatch.setattr(
            wire, "requests_to_bytes", lambda requests: b"not an npz payload"
        )
        subset = fleet_requests[:4]
        with pytest.raises(RuntimeError) as excinfo:
            UpdateService().update_fleet(subset, executor=ProcessExecutor(2))
        message = str(excinfo.value)
        assert "worker failed solving shard" in message
        assert any(request.site in message for request in subset), message

    def test_healthy_fleet_unaffected_by_error_path(self, fleet_requests):
        """The wrapper only fires on failure; healthy runs stay identical."""
        subset = fleet_requests[:4]
        serial = UpdateService().update_fleet(subset)
        scattered = UpdateService().update_fleet(
            subset, executor=ProcessExecutor(2)
        )
        for expected, got in zip(serial, scattered):
            np.testing.assert_array_equal(got.estimate, expected.estimate)


class TestPooledProcessExecutor:
    """The daemon's shared-pool backend keeps the bit-parity contract."""

    def test_shared_pool_bit_identical_to_serial(
        self, fleet_requests, serial_refresh
    ):
        from concurrent.futures import ProcessPoolExecutor

        serial_plan, serial_reports = serial_refresh
        with ProcessPoolExecutor(max_workers=2) as pool:
            service = UpdateService()
            reports = service.update_fleet(
                fleet_requests,
                shards=ShardConfig(max_stack_bytes=SHARD_BUDGET),
                executor=PooledProcessExecutor(pool, max_workers=2),
            )
            for expected, got in zip(serial_reports, reports):
                np.testing.assert_array_equal(got.estimate, expected.estimate)
                assert got.sweeps == expected.sweeps
            assert service.last_plan.shard_count == serial_plan.shard_count
            # The pool belongs to the caller: execute() must not shut it down.
            assert pool.submit(int, 7).result() == 7

    def test_window_budget_of_one_still_completes(self, fleet_requests):
        """max_workers caps in-flight shards, not total shards."""
        from concurrent.futures import ProcessPoolExecutor

        subset = fleet_requests[:8]
        serial = UpdateService().update_fleet(
            subset, shards=ShardConfig(max_stack_bytes=SHARD_BUDGET)
        )
        with ProcessPoolExecutor(max_workers=2) as pool:
            scattered = UpdateService().update_fleet(
                subset,
                shards=ShardConfig(max_stack_bytes=SHARD_BUDGET),
                executor=PooledProcessExecutor(pool, max_workers=1),
            )
        for expected, got in zip(serial, scattered):
            np.testing.assert_array_equal(got.estimate, expected.estimate)

    def test_requires_live_pool(self):
        with pytest.raises(ValueError, match="live process pool"):
            PooledProcessExecutor(None, max_workers=2)

    def test_name_and_subclass(self):
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=1) as pool:
            executor = PooledProcessExecutor(pool, max_workers=3)
            assert executor.name == "pooled-process"
            assert executor.workers == 3
            assert isinstance(executor, ProcessExecutor)


class TestExecutorResolution:
    def test_default_is_serial(self):
        assert isinstance(resolve_executor(None), SerialExecutor)
        assert resolve_executor(None).name == "serial"
        assert resolve_executor(None).workers == 0

    def test_string_names(self):
        assert isinstance(resolve_executor("serial"), SerialExecutor)
        assert isinstance(resolve_executor("process"), ProcessExecutor)

    def test_instance_passes_through(self):
        executor = ProcessExecutor(2)
        assert resolve_executor(executor) is executor

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            resolve_executor("threads")

    def test_wrong_type_rejected(self):
        with pytest.raises(TypeError, match="ShardExecutor"):
            resolve_executor(4)

    def test_process_executor_validates_workers(self):
        with pytest.raises(ValueError, match="at least 1"):
            ProcessExecutor(0)

    def test_default_worker_count_is_cpu_count(self):
        import os

        assert ProcessExecutor().workers == (os.cpu_count() or 1)

    def test_subclass_contract(self):
        assert issubclass(SerialExecutor, ShardExecutor)
        assert issubclass(ProcessExecutor, ShardExecutor)


class TestReportBookkeeping:
    def test_fleet_report_records_executor(self, fleet_requests):
        from repro.service.types import FleetReport

        service = UpdateService()
        executor = ProcessExecutor(2)
        reports = service.update_fleet(fleet_requests[:4], executor=executor)
        report = FleetReport(
            elapsed_days=45.0,
            reports=tuple(reports),
            plan=service.last_plan,
            executor=service.last_executor.name,
            workers=service.last_executor.workers,
        )
        assert report.executor == "process"
        assert report.workers == 2
        assert report.aggregate()["workers"] == 2.0

    def test_campaign_refresh_records_executor(self):
        from repro.service.fleet import FleetCampaign, FleetConfig
        from repro.simulation.campaign import CampaignConfig
        from repro.simulation.collector import CollectionConfig
        from repro.environments import environment_by_name

        specs = {
            "office": environment_by_name(
                "office", link_count=3, locations_per_link=3
            )
        }
        fleet = FleetCampaign(
            specs=specs,
            config=FleetConfig(
                environments=("office",),
                campaign=CampaignConfig(
                    timestamps_days=(0.0, 45.0),
                    collection=CollectionConfig(
                        survey_samples=3, reference_samples=2, online_samples=1
                    ),
                    seed=5,
                ),
            ),
        )
        serial = fleet.refresh(45.0)
        assert serial.executor == "serial"
        assert serial.workers == 0
        # (No estimate comparison across refreshes: every refresh collects
        # fresh measurements from the stateful simulated channel.  Executor
        # parity on identical requests is pinned in
        # TestProcessExecutorParity.)
        scattered = fleet.refresh(45.0, executor=ProcessExecutor(2))
        assert scattered.executor == "process"
        assert scattered.workers == 2


class TestWorkerCountValidation:
    """ISSUE 10 satellite: a uniform, named error across every backend."""

    @pytest.mark.parametrize("bad", [0, -1, -7])
    def test_process_executor_rejects_non_positive(self, bad):
        from repro.service.executor import InvalidWorkerCountError

        with pytest.raises(InvalidWorkerCountError, match="at least 1"):
            ProcessExecutor(bad)

    @pytest.mark.parametrize("bad", [2.5, "4", True, [2]])
    def test_process_executor_rejects_non_integers(self, bad):
        from repro.service.executor import InvalidWorkerCountError

        with pytest.raises(InvalidWorkerCountError, match="integer"):
            ProcessExecutor(bad)

    def test_pooled_executor_rejects_bad_counts(self):
        from concurrent.futures import ProcessPoolExecutor

        from repro.service.executor import InvalidWorkerCountError

        pool = ProcessPoolExecutor(max_workers=1)
        try:
            with pytest.raises(InvalidWorkerCountError, match="PooledProcessExecutor"):
                PooledProcessExecutor(pool, max_workers=0)
            with pytest.raises(InvalidWorkerCountError, match="integer"):
                PooledProcessExecutor(pool, max_workers=1.5)
        finally:
            pool.shutdown()

    def test_remote_executor_rejects_bad_counts(self):
        from repro.service.executor import InvalidWorkerCountError
        from repro.service.remote import RemoteExecutor

        with pytest.raises(InvalidWorkerCountError, match="RemoteExecutor"):
            RemoteExecutor(["http://127.0.0.1:1"], max_workers=0)
        with pytest.raises(InvalidWorkerCountError, match="integer"):
            RemoteExecutor(["http://127.0.0.1:1"], max_workers=2.5)

    def test_error_is_a_value_error(self):
        from repro.service.executor import InvalidWorkerCountError

        assert issubclass(InvalidWorkerCountError, ValueError)

    def test_error_names_the_owner(self):
        from repro.service.executor import InvalidWorkerCountError

        with pytest.raises(InvalidWorkerCountError, match="ProcessExecutor"):
            ProcessExecutor(-2)
