"""Parity: a fleet-stacked update must match independent per-site updates.

The acceptance bar of the fleet service: refreshing N sites through one
``UpdateService.update_fleet`` call (every sweep stacked into one batched
solve per distinct rank, heterogeneous shapes concatenated into one
workload) produces, per site, the same estimate as N independent
``IUpdater.update()`` runs to ≤ 1e-10 — in practice bit-identical, because
batched LU factorises each slice independently.
"""

import numpy as np
import pytest

from repro.core.stacked import sweep_stack_nbytes
from repro.core.updater import IUpdater, UpdaterConfig
from repro.environments.base import EnvironmentSpec
from repro.service.fleet import FleetCampaign, FleetConfig
from repro.service.service import UpdateService
from repro.service.shard import ShardConfig
from repro.service.types import UpdateRequest
from repro.simulation.campaign import CampaignConfig
from repro.simulation.collector import CollectionConfig

PARITY_TOL = 1e-10
ELAPSED_DAYS = 45.0

# Deliberately heterogeneous shapes AND ranks (rank defaults to link count),
# so the stacked solve exercises the rank-grouping path.
SITE_SHAPES = {
    "office-like": (4, 6),
    "hall-like": (3, 5),
    "library-like": (5, 4),
}


def make_spec(name: str, links: int, width: int) -> EnvironmentSpec:
    return EnvironmentSpec(
        name=name,
        width_m=8.0,
        height_m=6.0,
        link_count=links,
        locations_per_link=width,
        multipath_level="medium",
    )


@pytest.fixture(scope="module")
def fleet() -> FleetCampaign:
    specs = {
        name: make_spec(name, links, width)
        for name, (links, width) in SITE_SHAPES.items()
    }
    config = FleetConfig(
        environments=tuple(specs),
        campaign=CampaignConfig(
            timestamps_days=(0.0, ELAPSED_DAYS),
            collection=CollectionConfig(
                survey_samples=3, reference_samples=2, online_samples=1
            ),
            seed=5,
        ),
    )
    return FleetCampaign(specs=specs, config=config)


@pytest.fixture(scope="module")
def requests(fleet):
    """One set of collected measurements, shared by both update paths."""
    return fleet.build_requests(ELAPSED_DAYS)


@pytest.fixture(scope="module")
def fleet_reports(fleet, requests):
    return fleet.service.update_fleet(requests)


class TestFleetParity:
    def test_three_sites_match_independent_updates(self, fleet, requests, fleet_reports):
        assert len(fleet_reports) == len(SITE_SHAPES)
        for request, report in zip(requests, fleet_reports):
            updater = fleet.updater(request.site)
            independent = updater.update(
                no_decrease_matrix=request.no_decrease_matrix,
                no_decrease_mask=request.no_decrease_mask,
                reference_matrix=request.reference_matrix,
                reference_indices=request.reference_indices,
            )
            np.testing.assert_allclose(
                report.estimate,
                independent.estimate,
                atol=PARITY_TOL,
                rtol=0.0,
                err_msg=f"fleet-stacked estimate diverged for site {request.site}",
            )
            assert report.sweeps == independent.solver.iterations
            assert report.converged == independent.solver.converged
            assert report.result.reference_indices == independent.reference_indices

    def test_report_order_matches_request_order(self, requests, fleet_reports):
        assert [r.site for r in fleet_reports] == [r.site for r in requests]

    def test_sites_solve_on_the_batched_backend(self, fleet_reports):
        assert all(report.solver_backend == "batched" for report in fleet_reports)

    def test_solver_metadata_matches_shapes(self, fleet, fleet_reports):
        for report in fleet_reports:
            links, width = SITE_SHAPES[report.site]
            assert report.matrix.shape == (links, links * width)

    def test_single_site_fleet_matches_updater(self, fleet, requests):
        request = requests[0]
        report = UpdateService().update(request)
        independent = fleet.updater(request.site).update(
            request.no_decrease_matrix,
            request.no_decrease_mask,
            request.reference_matrix,
            request.reference_indices,
        )
        np.testing.assert_allclose(
            report.estimate, independent.estimate, atol=PARITY_TOL, rtol=0.0
        )


class TestShardParity:
    """Acceptance bar of the sharded scheduler: any shard split of a
    mixed-rank, mixed-shape fleet is bit-identical to any other, and matches
    standalone ``IUpdater.update`` runs to ≤ 1e-10."""

    # Three rank-4 sites of different widths (one shared rank group that can
    # actually be split) plus a rank-3 and a rank-5 site.
    SHARD_SITE_SHAPES = {
        "office-a": (4, 6),
        "office-b": (4, 8),
        "hall-like": (3, 5),
        "library-like": (5, 4),
        "office-c": (4, 5),
    }

    @pytest.fixture(scope="class")
    def shard_fleet(self):
        specs = {
            name: make_spec(name, links, width)
            for name, (links, width) in self.SHARD_SITE_SHAPES.items()
        }
        config = FleetConfig(
            environments=tuple(specs),
            campaign=CampaignConfig(
                timestamps_days=(0.0, ELAPSED_DAYS),
                collection=CollectionConfig(
                    survey_samples=3, reference_samples=2, online_samples=1
                ),
                seed=11,
            ),
        )
        return FleetCampaign(specs=specs, config=config)

    @pytest.fixture(scope="class")
    def shard_requests(self, shard_fleet):
        return shard_fleet.build_requests(ELAPSED_DAYS)

    @pytest.fixture(scope="class")
    def shard_variants(self, shard_requests):
        """Per-site estimates under shard sizes {1, 2-ish, unbounded}."""
        # A budget of two rank-4 sites' stacks forces the rank-4 group into a
        # pair shard plus a singleton; 1 byte forces singletons everywhere;
        # None disables splitting.
        pair_budget = sum(
            8 * links * width * (links * links + links)
            for name, (links, width) in list(self.SHARD_SITE_SHAPES.items())[:2]
        )
        budgets = {"singleton": 1, "pairs": pair_budget, "unbounded": None}
        variants = {}
        for label, budget in budgets.items():
            service = UpdateService()
            shards = None if budget is None else ShardConfig(max_stack_bytes=budget)
            reports = service.update_fleet(shard_requests, shards=shards)
            variants[label] = (service.last_plan, reports)
        return variants

    def test_budgets_produce_distinct_plans(self, shard_variants):
        shard_counts = {
            label: plan.shard_count for label, (plan, _) in shard_variants.items()
        }
        assert shard_counts["singleton"] == len(self.SHARD_SITE_SHAPES)
        assert shard_counts["unbounded"] == 3  # one shard per distinct rank
        assert (
            shard_counts["unbounded"]
            < shard_counts["pairs"]
            < shard_counts["singleton"]
        )

    def test_all_shard_splits_are_bit_identical(self, shard_variants):
        _, baseline = shard_variants["unbounded"]
        for label in ("singleton", "pairs"):
            _, reports = shard_variants[label]
            for expected, got in zip(baseline, reports):
                assert got.site == expected.site
                np.testing.assert_array_equal(
                    got.estimate,
                    expected.estimate,
                    err_msg=f"shard split {label!r} perturbed site {got.site}",
                )
                assert got.sweeps == expected.sweeps
                assert got.converged == expected.converged

    def test_sharded_results_match_standalone_updates(
        self, shard_fleet, shard_requests, shard_variants
    ):
        _, reports = shard_variants["pairs"]
        for request, report in zip(shard_requests, reports):
            independent = shard_fleet.updater(request.site).update(
                no_decrease_matrix=request.no_decrease_matrix,
                no_decrease_mask=request.no_decrease_mask,
                reference_matrix=request.reference_matrix,
                reference_indices=request.reference_indices,
            )
            np.testing.assert_allclose(
                report.estimate,
                independent.estimate,
                atol=PARITY_TOL,
                rtol=0.0,
                err_msg=f"sharded estimate diverged for site {request.site}",
            )

    def test_rank_groups_never_pad(self, shard_variants):
        plan, _ = shard_variants["unbounded"]
        for shard in plan.shards:
            links = {site: self.SHARD_SITE_SHAPES[site][0] for site in shard.sites}
            assert set(links.values()) == {shard.rank}

    def test_plan_byte_estimates_match_states(self, shard_requests):
        service = UpdateService()
        service.update_fleet(shard_requests, shards=1)
        plan = service.last_plan
        prepared = [service._prepare(request) for request in shard_requests]
        expected = {
            p.request.site: sweep_stack_nbytes(p.state) for p in prepared
        }
        for shard in plan.shards:
            assert shard.stack_bytes == expected[shard.sites[0]]


class TestMixedBackendFleet:
    def test_looped_site_rides_the_reference_path(self, fleet, requests):
        """A mixed fleet (batched + looped sites) stays per-site correct."""
        looped_request = UpdateRequest(
            site=requests[0].site,
            baseline=requests[0].baseline,
            no_decrease_matrix=requests[0].no_decrease_matrix,
            no_decrease_mask=requests[0].no_decrease_mask,
            reference_matrix=requests[0].reference_matrix,
            reference_indices=requests[0].reference_indices,
            config=UpdaterConfig(solver_backend="looped"),
            rng=requests[0].rng,
            correlation=requests[0].correlation,
        )
        reports = UpdateService().update_fleet([looped_request, requests[1]])
        assert reports[0].solver_backend == "looped"
        assert reports[1].solver_backend == "batched"
        # The looped reference path and the batched path agree to solver
        # parity tolerance on these well-conditioned problems.
        batched = UpdateService().update(requests[0])
        np.testing.assert_allclose(
            reports[0].estimate, batched.estimate, atol=1e-4, rtol=0.0
        )
