"""Chaos suite: the remote executor must be invisible in the results.

ISSUE 10 acceptance: ``RemoteExecutor`` produces fleet reports
**bit-identical** to ``SerialExecutor`` for any endpoint count — and under
every injected fault class.  Every robustness claim of the remote
transport (retry with backoff, worker-loss failover, straggler
re-dispatch, fingerprint-deduplicated duplicate completions) is pinned
here by deliberate :class:`~repro.service.remote.FaultPlan` injection
driving the *production* code paths, with the per-site
:func:`~repro.io.delta.report_fingerprint` as the bit-identity oracle and
the executor's dispatch statistics as the accounting oracle.
"""

import json
import urllib.error
import urllib.request
from contextlib import contextmanager

import pytest

from repro.core.self_augmented import SelfAugmentedConfig
from repro.core.updater import UpdaterConfig
from repro.io.delta import report_fingerprint
from repro.io.wire import WirePayloadError, shard_task_to_bytes
from repro.service.remote import (
    FAULT_KINDS,
    Fault,
    FaultPlan,
    RemoteExecutor,
    RemoteShardError,
    WorkerServer,
)
from repro.service.service import UpdateService
from repro.service.shard import ShardConfig
from repro.service.synthetic import synthesize_fleet
from repro.service.types import FleetReport

FLEET_SITES = 12
SHARD_BUDGET = 8 * 1024  # small enough to split the fleet into several shards

# Fast dispatch knobs for fault scenarios: tight timeout, minimal backoff.
FAST = dict(timeout=5.0, max_attempts=4, backoff=0.02)


@pytest.fixture(scope="module")
def fleet_requests():
    """A 12-site synthetic fleet with two factorisation ranks (CI-sized)."""
    return synthesize_fleet(
        FLEET_SITES,
        elapsed_days=45.0,
        seed=23,
        link_count=(3, 4),
        locations_per_link=3,
        updater=UpdaterConfig(solver=SelfAugmentedConfig(max_iterations=4)),
    )


def refresh(fleet_requests, executor=None):
    """One fleet refresh packaged as a ``FleetReport`` (the wire artifact)."""
    service = UpdateService()
    reports = service.update_fleet(
        fleet_requests,
        shards=ShardConfig(max_stack_bytes=SHARD_BUDGET),
        executor=executor,
    )
    return FleetReport(
        elapsed_days=45.0,
        reports=tuple(reports),
        stacked_sweeps=service.last_stacked_sweeps,
        plan=service.last_plan,
    )


@pytest.fixture(scope="module")
def serial_report(fleet_requests):
    report = refresh(fleet_requests)
    assert report.plan.shard_count >= 2, "chaos fleet must span several shards"
    return report


@pytest.fixture(scope="module")
def serial_fingerprint(serial_report):
    return report_fingerprint(serial_report)


@contextmanager
def running_workers(count, fault_plans=None):
    """``count`` live WorkerServers, each optionally armed with faults."""
    servers = []
    try:
        for index in range(count):
            faults = None
            if fault_plans is not None and index < len(fault_plans):
                faults = fault_plans[index]
            server = WorkerServer(faults=faults)
            server.start()
            servers.append(server)
        yield servers
    finally:
        for server in servers:
            server.stop()


class TestRemoteParity:
    """Bit-identical to serial for any endpoint count, no faults."""

    @pytest.mark.parametrize("endpoints", [1, 2, 3])
    def test_endpoint_counts_bit_identical_to_serial(
        self, fleet_requests, serial_fingerprint, endpoints
    ):
        with running_workers(endpoints) as servers:
            executor = RemoteExecutor([s.url for s in servers], **FAST)
            report = refresh(fleet_requests, executor)
        assert report_fingerprint(report) == serial_fingerprint
        # Clean run: every shard solved on its first dispatch.
        shard_count = report.plan.shard_count
        assert sum(executor.last_attempts.values()) == shard_count
        assert sum(executor.last_retries.values()) == 0
        assert executor.last_duplicates_dropped == 0

    def test_work_spreads_across_workers(self, fleet_requests, serial_fingerprint):
        with running_workers(2) as servers:
            executor = RemoteExecutor([s.url for s in servers], **FAST)
            report = refresh(fleet_requests, executor)
            solved = [server.solved for server in servers]
        assert report_fingerprint(report) == serial_fingerprint
        assert sum(solved) == report.plan.shard_count
        assert all(count > 0 for count in solved), solved

    def test_executor_name_and_workers(self):
        executor = RemoteExecutor(["127.0.0.1:1", "127.0.0.1:2"])
        assert executor.name == "remote"
        assert executor.workers == 2
        # Bare host:port endpoints normalise to http:// URLs.
        assert executor.endpoints == ["http://127.0.0.1:1", "http://127.0.0.1:2"]


class TestChaosMatrix:
    """Every fault class: bit-identical results + accurate dispatch stats."""

    def test_fault_matrix_is_exhaustive(self):
        covered = {"drop", "delay", "duplicate", "corrupt", "kill"}
        assert covered == set(FAULT_KINDS)

    def test_dropped_response_is_retried(self, fleet_requests, serial_fingerprint):
        plans = [FaultPlan([Fault("drop", shard=0, attempt=0)])]
        with running_workers(1, plans) as (worker,):
            executor = RemoteExecutor([worker.url], **FAST)
            report = refresh(fleet_requests, executor)
            assert len(plans[0].fired) == 1
        assert report_fingerprint(report) == serial_fingerprint
        assert executor.last_retries[0] == 1
        assert executor.last_attempts[0] == 2
        shard_count = report.plan.shard_count
        assert sum(executor.last_attempts.values()) == shard_count + 1

    def test_delay_past_timeout_is_retried(
        self, fleet_requests, serial_fingerprint
    ):
        plans = [FaultPlan([Fault("delay", shard=0, attempt=0, seconds=4.0)])]
        with running_workers(2, plans) as servers:
            executor = RemoteExecutor(
                [s.url for s in servers],
                timeout=0.75,
                max_attempts=4,
                backoff=0.02,
            )
            report = refresh(fleet_requests, executor)
        assert report_fingerprint(report) == serial_fingerprint
        assert executor.last_retries[0] >= 1
        # Only the delayed shard paid extra dispatches.
        clean = [i for i in executor.last_retries if i != 0]
        assert all(executor.last_retries[i] == 0 for i in clean)

    def test_duplicate_completion_is_deduplicated(
        self, fleet_requests, serial_fingerprint
    ):
        faults = FaultPlan([Fault("duplicate", shard=0, attempt=0)])
        with running_workers(2) as servers:
            executor = RemoteExecutor(
                [s.url for s in servers], faults=faults, **FAST
            )
            report = refresh(fleet_requests, executor)
            # Both workers really solved shard 0: two full completions.
            assert sum(s.solved for s in servers) == report.plan.shard_count + 1
        assert report_fingerprint(report) == serial_fingerprint
        assert executor.last_duplicates_dropped == 1
        assert executor.last_attempts[0] == 2
        assert executor.last_redispatches[0] == 1
        assert executor.last_retries[0] == 0  # a duplicate is not a failure

    def test_corrupt_payload_is_caught_and_retried(
        self, fleet_requests, serial_fingerprint
    ):
        plans = [FaultPlan([Fault("corrupt", shard=0, attempt=0)])]
        with running_workers(2, plans) as servers:
            executor = RemoteExecutor([s.url for s in servers], **FAST)
            report = refresh(fleet_requests, executor)
            assert len(plans[0].fired) == 1
        assert report_fingerprint(report) == serial_fingerprint
        assert executor.last_retries[0] == 1
        assert executor.last_attempts[0] == 2

    def test_worker_killed_mid_shard_fails_over(
        self, fleet_requests, serial_fingerprint
    ):
        plans = [FaultPlan([Fault("kill", shard=0, attempt=0)])]
        with running_workers(2, plans) as servers:
            executor = RemoteExecutor([s.url for s in servers], **FAST)
            report = refresh(fleet_requests, executor)
            assert servers[0].killed
            # The survivor absorbed the dead worker's shards.
            assert servers[1].solved >= 1
        assert report_fingerprint(report) == serial_fingerprint
        assert executor.last_attempts[0] == 2
        assert executor.last_retries[0] == 1

    def test_each_fault_fires_once(self):
        plan = FaultPlan([Fault("drop", shard=3, attempt=1)])
        assert plan.take(3, 0) is None  # wrong attempt
        assert plan.take(2, 1) is None  # wrong shard
        fault = plan.take(3, 1)
        assert fault is not None and fault.kind == "drop"
        assert plan.take(3, 1) is None  # consumed
        assert plan.fired == (fault,)
        assert plan.pending == ()


class TestStragglerRedispatch:
    def test_straggler_races_second_worker(
        self, fleet_requests, serial_fingerprint
    ):
        plans = [FaultPlan([Fault("delay", shard=0, attempt=0, seconds=3.0)])]
        with running_workers(2, plans) as servers:
            executor = RemoteExecutor(
                [s.url for s in servers],
                timeout=30.0,  # never times out: the race must win, not retry
                max_attempts=2,
                backoff=0.02,
                straggler_after=0.3,
            )
            report = refresh(fleet_requests, executor)
        assert report_fingerprint(report) == serial_fingerprint
        assert executor.last_redispatches[0] == 1
        assert executor.last_attempts[0] == 2
        assert executor.last_retries[0] == 0  # the backup won within attempt 0


class TestRetryExhaustion:
    def test_exhausted_shard_names_its_sites(self, fleet_requests):
        plans = [FaultPlan([Fault("kill", shard=0, attempt=0)])]
        with running_workers(1, plans) as (worker,):
            executor = RemoteExecutor(
                [worker.url], timeout=2.0, max_attempts=2, backoff=0.02
            )
            with pytest.raises(RemoteShardError) as excinfo:
                refresh(fleet_requests, executor)
        message = str(excinfo.value)
        assert "shard" in message and "sites" in message
        assert "2 dispatch(es)" in message

    def test_unreachable_endpoint_fails_cleanly(self, fleet_requests):
        executor = RemoteExecutor(
            ["http://127.0.0.1:1"], timeout=1.0, max_attempts=2, backoff=0.01
        )
        with pytest.raises(RemoteShardError):
            refresh(fleet_requests, executor)


class TestFaultPlanParsing:
    def test_parse_specs(self):
        fault = Fault.parse("delay:shard=1,seconds=2.5")
        assert fault == Fault("delay", shard=1, attempt=0, seconds=2.5)
        assert Fault.parse("drop") == Fault("drop")
        assert Fault.parse("kill:shard=0,attempt=2") == Fault(
            "kill", shard=0, attempt=2
        )
        plan = FaultPlan.parse(["drop", "kill:shard=1"])
        assert len(plan) == 2

    @pytest.mark.parametrize(
        "spec",
        ["melt", "drop:bogus=1", "delay:seconds=abc", "kill:shard"],
    )
    def test_bad_specs_raise(self, spec):
        with pytest.raises(ValueError):
            Fault.parse(spec)

    def test_fault_validation(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            Fault("explode")
        with pytest.raises(ValueError, match="attempt"):
            Fault("drop", attempt=-1)
        with pytest.raises(ValueError, match="seconds"):
            Fault("delay", seconds=-0.5)
        with pytest.raises(TypeError):
            FaultPlan(["drop"])  # specs need FaultPlan.parse


class TestWorkerServerEndpoints:
    def test_health_reports_counters(self):
        with running_workers(1, [FaultPlan([Fault("drop", shard=9)])]) as (worker,):
            with urllib.request.urlopen(f"{worker.url}/api/health") as response:
                payload = json.loads(response.read())
        assert payload["status"] == "ok"
        assert payload["solved"] == 0
        assert payload["faults_armed"] == 1
        assert payload["faults_injected"] == 0

    def test_unknown_route_is_404(self):
        with running_workers(1) as (worker,):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"{worker.url}/api/bogus")
            assert excinfo.value.code == 404

    def test_malformed_task_is_400(self):
        with running_workers(1) as (worker,):
            request = urllib.request.Request(
                f"{worker.url}/api/shard", data=b"not a payload", method="POST"
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request)
            assert excinfo.value.code == 400

    def test_wrong_fingerprint_response_is_rejected(self, fleet_requests):
        """A completion answering a different dispatch must not be gathered."""
        from repro.io.wire import requests_to_bytes
        from repro.service.executor import scatter_request
        from repro.service.prepare import prepare_request

        prepared = [prepare_request(request) for request in fleet_requests[:2]]
        payload = requests_to_bytes([scatter_request(p) for p in prepared])
        with running_workers(1) as (worker,):
            executor = RemoteExecutor([worker.url], **FAST)
            body = executor._post(
                worker.url, shard_task_to_bytes(payload, 0, attempt=0)
            )

            class FakeShard:
                index = 0
                members = (0, 1)
                sites = ("a", "b")

            with pytest.raises(WirePayloadError, match="fingerprint"):
                executor._decode(body, FakeShard(), "0" * 64)


class TestRemoteExecutorValidation:
    def test_rejects_empty_endpoints(self):
        with pytest.raises(ValueError, match="at least one"):
            RemoteExecutor([])
        with pytest.raises(ValueError, match="non-empty"):
            RemoteExecutor([""])

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(timeout=0.0),
            dict(max_attempts=0),
            dict(backoff=-1.0),
            dict(backoff_cap=-0.1),
            dict(straggler_after=0.0),
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            RemoteExecutor(["http://127.0.0.1:1"], **kwargs)
