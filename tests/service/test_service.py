"""Unit tests of the service request/response model and fleet plumbing."""

import numpy as np
import pytest

from repro.core.stacked import run_stacked_sweeps, solve_states
from repro.core.self_augmented import SelfAugmentedConfig, SweepState, solve_state
from repro.environments import ENVIRONMENT_FACTORIES, environment_by_name
from repro.service.fleet import PAPER_FLEET, FleetCampaign, FleetConfig
from repro.service.service import UpdateService
from repro.service.types import FleetReport, UpdateReport, UpdateRequest
from repro.simulation.campaign import CampaignConfig
from repro.simulation.collector import CollectionConfig


@pytest.fixture(scope="module")
def small_fleet():
    from repro.environments.base import EnvironmentSpec

    specs = {
        "alpha": EnvironmentSpec(
            name="alpha", width_m=8.0, height_m=6.0, link_count=4, locations_per_link=5
        ),
        "beta": EnvironmentSpec(
            name="beta", width_m=8.0, height_m=6.0, link_count=3, locations_per_link=4
        ),
    }
    config = FleetConfig(
        environments=tuple(specs),
        campaign=CampaignConfig(
            timestamps_days=(0.0, 45.0),
            collection=CollectionConfig(
                survey_samples=3, reference_samples=2, online_samples=1
            ),
            seed=3,
        ),
    )
    return FleetCampaign(specs=specs, config=config)


@pytest.fixture(scope="module")
def sample_request(small_fleet):
    return small_fleet.build_requests(45.0)[0]


class TestEnvironmentRegistry:
    def test_registry_covers_paper_fleet(self):
        assert set(PAPER_FLEET) <= set(ENVIRONMENT_FACTORIES)

    def test_environment_by_name_builds_spec(self):
        spec = environment_by_name("office", link_count=4, locations_per_link=5)
        assert spec.name == "office"
        assert spec.link_count == 4
        assert spec.total_locations == 20

    def test_unknown_environment_rejected(self):
        with pytest.raises(ValueError, match="unknown environment"):
            environment_by_name("warehouse")


class TestUpdateRequestValidation:
    def test_valid_request_normalises_indices(self, sample_request):
        assert all(isinstance(i, int) for i in sample_request.reference_indices)

    def test_empty_site_rejected(self, sample_request):
        with pytest.raises(ValueError, match="site"):
            UpdateRequest(
                site="",
                baseline=sample_request.baseline,
                no_decrease_matrix=sample_request.no_decrease_matrix,
                no_decrease_mask=sample_request.no_decrease_mask,
                reference_matrix=sample_request.reference_matrix,
            )

    def test_baseline_type_checked(self, sample_request):
        with pytest.raises(TypeError, match="FingerprintMatrix"):
            UpdateRequest(
                site="x",
                baseline=sample_request.baseline.values,
                no_decrease_matrix=sample_request.no_decrease_matrix,
                no_decrease_mask=sample_request.no_decrease_mask,
                reference_matrix=sample_request.reference_matrix,
            )

    def test_shape_mismatch_rejected(self, sample_request):
        with pytest.raises(ValueError, match="does not match the baseline"):
            UpdateRequest(
                site="x",
                baseline=sample_request.baseline,
                no_decrease_matrix=sample_request.no_decrease_matrix[:, :-1],
                no_decrease_mask=sample_request.no_decrease_mask[:, :-1],
                reference_matrix=sample_request.reference_matrix,
            )

    def test_non_binary_mask_rejected(self, sample_request):
        with pytest.raises(ValueError, match="only 0 and 1"):
            UpdateRequest(
                site="x",
                baseline=sample_request.baseline,
                no_decrease_matrix=sample_request.no_decrease_matrix,
                no_decrease_mask=np.full_like(sample_request.no_decrease_mask, 0.5),
                reference_matrix=sample_request.reference_matrix,
            )

    def test_reference_row_count_checked(self, sample_request):
        with pytest.raises(ValueError, match="one row per link"):
            UpdateRequest(
                site="x",
                baseline=sample_request.baseline,
                no_decrease_matrix=sample_request.no_decrease_matrix,
                no_decrease_mask=sample_request.no_decrease_mask,
                reference_matrix=sample_request.reference_matrix[:-1, :],
            )

    def test_reference_index_count_checked(self, sample_request):
        with pytest.raises(ValueError, match="one column per reference index"):
            UpdateRequest(
                site="x",
                baseline=sample_request.baseline,
                no_decrease_matrix=sample_request.no_decrease_matrix,
                no_decrease_mask=sample_request.no_decrease_mask,
                reference_matrix=sample_request.reference_matrix,
                reference_indices=(0,),
            )


class TestUpdateService:
    def test_empty_fleet_is_a_noop(self):
        assert UpdateService().update_fleet([]) == []

    def test_duplicate_sites_rejected(self, sample_request):
        with pytest.raises(ValueError, match="duplicate site"):
            UpdateService().update_fleet([sample_request, sample_request])

    def test_report_exposes_result_fields(self, sample_request):
        report = UpdateService().update(sample_request)
        assert isinstance(report, UpdateReport)
        assert report.site == sample_request.site
        assert report.estimate.shape == sample_request.baseline.shape
        assert report.sweeps >= 1
        assert np.isfinite(report.objective)

    def test_mic_lrr_recomputed_without_correlation(self, sample_request):
        bare = UpdateRequest(
            site=sample_request.site,
            baseline=sample_request.baseline,
            no_decrease_matrix=sample_request.no_decrease_matrix,
            no_decrease_mask=sample_request.no_decrease_mask,
            reference_matrix=sample_request.reference_matrix,
            reference_indices=sample_request.reference_indices,
            config=sample_request.config,
            rng=sample_request.rng,
        )
        with_cache = UpdateService().update(sample_request)
        without_cache = UpdateService().update(bare)
        np.testing.assert_allclose(
            with_cache.estimate, without_cache.estimate, atol=1e-10, rtol=0.0
        )


class TestFleetCampaign:
    def test_default_fleet_uses_registry_names(self):
        config = FleetConfig()
        assert config.environments == PAPER_FLEET

    def test_sites_and_campaign_access(self, small_fleet):
        assert small_fleet.sites == ("alpha", "beta")
        assert small_fleet.campaign("alpha").spec.name == "alpha"
        with pytest.raises(ValueError, match="unknown site"):
            small_fleet.campaign("gamma")

    def test_sites_get_distinct_seeds(self, small_fleet):
        seeds = [c.config.seed for c in small_fleet.campaigns.values()]
        assert len(set(seeds)) == len(seeds)

    def test_stacked_sweeps_ignores_looped_sites(self):
        """Looped-backend sites never ride the stacked solve, so they must
        not inflate the reported lockstep sweep count."""
        from repro.core.updater import UpdaterConfig
        from repro.environments.base import EnvironmentSpec

        spec = EnvironmentSpec(
            name="gamma", width_m=8.0, height_m=6.0, link_count=3, locations_per_link=4
        )
        fleet = FleetCampaign(
            specs={"gamma": spec},
            config=FleetConfig(
                environments=("gamma",),
                campaign=CampaignConfig(
                    timestamps_days=(0.0, 45.0),
                    collection=CollectionConfig(
                        survey_samples=3, reference_samples=2, online_samples=1
                    ),
                    updater=UpdaterConfig(solver_backend="looped"),
                    seed=3,
                ),
            ),
        )
        report = fleet.refresh(45.0)
        assert report.reports[0].solver_backend == "looped"
        assert report.reports[0].sweeps >= 1
        # No site rode the stacked solve, so zero lockstep sweeps executed.
        assert report.stacked_sweeps == 0

    def test_refresh_grades_against_ground_truth(self, small_fleet):
        report = small_fleet.refresh(45.0)
        assert isinstance(report, FleetReport)
        assert set(report.errors_db) == {"alpha", "beta"}
        assert set(report.stale_errors_db) == {"alpha", "beta"}
        # The refreshed databases must beat doing nothing.
        for site in small_fleet.sites:
            assert report.errors_db[site] < report.stale_errors_db[site]
        assert report.stacked_sweeps >= 1
        aggregate = report.aggregate()
        assert aggregate["sites"] == 2.0
        assert aggregate["mean_error_db"] < aggregate["mean_stale_error_db"]
        assert report.worst_site in small_fleet.sites
        assert report.report_for("alpha").site == "alpha"
        with pytest.raises(KeyError):
            report.report_for("gamma")

    def test_invalid_fleet_configs_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            FleetConfig(environments=())
        with pytest.raises(ValueError, match="duplicate"):
            FleetConfig(environments=("office", "office"))
        with pytest.raises(ValueError, match="seed_stride"):
            FleetConfig(seed_stride=0)
        with pytest.raises(ValueError, match="at least one site"):
            FleetCampaign(specs={})


class TestStackedDriver:
    def make_states(self, count=3, seed=0):
        rng = np.random.default_rng(seed)
        states = []
        for k in range(count):
            links, width = 3 + k, 4
            truth = rng.normal(size=(links, 2)) @ rng.normal(size=(2, links * width))
            mask = (rng.random(truth.shape) < 0.7).astype(float)
            config = SelfAugmentedConfig(
                rank=3, regularization=0.5, max_iterations=6, use_structure_constraint=False
            )
            states.append(
                SweepState(truth * mask, mask, width, config=config, rng=k)
            )
        return states

    def test_lockstep_matches_standalone_batched(self):
        stacked_results = solve_states(self.make_states())
        standalone_results = [
            solve_state(state) for state in self.make_states()
        ]
        for got, expect in zip(stacked_results, standalone_results):
            np.testing.assert_allclose(
                got.estimate, expect.estimate, atol=1e-12, rtol=0.0
            )
            assert got.iterations == expect.iterations
            assert got.converged == expect.converged

    def test_empty_state_list_is_a_noop(self):
        assert run_stacked_sweeps([]) == 0
        assert solve_states([]) == []

    def test_looped_backend_keeps_state_bookkeeping(self):
        """solve_state on a looped-backend state must leave the state's
        convergence bookkeeping consistent with the returned result."""
        rng = np.random.default_rng(4)
        links, width = 4, 5
        truth = rng.normal(size=(links, 2)) @ rng.normal(size=(2, links * width))
        mask = (rng.random(truth.shape) < 0.7).astype(float)
        config = SelfAugmentedConfig(
            rank=3,
            regularization=0.5,
            max_iterations=6,
            use_structure_constraint=False,
            solver_backend="looped",
        )
        state = SweepState(truth * mask, mask, width, config=config, rng=1)
        result = solve_state(state)
        assert state.iterations == result.iterations >= 1
        assert state.converged == result.converged
        assert float(state.previous_objective) == result.objective
        np.testing.assert_allclose(
            state.finalize().estimate, result.estimate, atol=0.0, rtol=0.0
        )
