"""Unit tests of the shard planner and its service integration."""

import numpy as np
import pytest

from repro.core.stacked import run_sharded_sweeps, sweep_stack_nbytes
from repro.service.service import UpdateService
from repro.service.shard import (
    DEFAULT_MAX_STACK_BYTES,
    Shard,
    ShardConfig,
    ShardPlan,
    mark_executed,
    plan_shards,
    resolve_shard_config,
)
from repro.service.synthetic import synthesize_fleet
from repro.utils.linalg import system_stack_nbytes


class TestShardConfig:
    def test_default_budget_is_l3_ish(self):
        assert ShardConfig().max_stack_bytes == DEFAULT_MAX_STACK_BYTES == 32 * 2**20

    def test_unbounded_allowed(self):
        assert ShardConfig(max_stack_bytes=None).max_stack_bytes is None

    def test_non_positive_budget_rejected(self):
        with pytest.raises(ValueError, match="max_stack_bytes"):
            ShardConfig(max_stack_bytes=0)

    def test_resolve_accepts_int_shorthand(self):
        assert resolve_shard_config(4096).max_stack_bytes == 4096
        assert resolve_shard_config(None).max_stack_bytes is None
        config = ShardConfig(max_stack_bytes=7)
        assert resolve_shard_config(config) is config
        with pytest.raises(TypeError, match="shards must be"):
            resolve_shard_config("big")

    def test_bool_is_not_a_budget(self):
        with pytest.raises(TypeError, match="shards must be"):
            resolve_shard_config(True)


class TestStackByteEstimates:
    def test_system_stack_nbytes(self):
        # batch (r,r) matrices + batch r-vectors of float64.
        assert system_stack_nbytes(10, 4) == 8 * 10 * (16 + 4)
        with pytest.raises(ValueError):
            system_stack_nbytes(-1, 4)


class TestPlanShards:
    def test_rank_groups_never_mix(self):
        plan = plan_shards(
            sites=["a", "b", "c", "d"],
            ranks=[4, 3, 4, 3],
            stack_bytes=[100, 100, 100, 100],
            config=ShardConfig(max_stack_bytes=None),
        )
        assert plan.shard_count == 2
        by_rank = {shard.rank: shard for shard in plan.shards}
        assert by_rank[4].sites == ("a", "c")
        assert by_rank[3].sites == ("b", "d")
        assert plan.ranks == (4, 3)

    def test_budget_splits_a_rank_group(self):
        plan = plan_shards(
            sites=["a", "b", "c"],
            ranks=[4, 4, 4],
            stack_bytes=[60, 60, 60],
            config=ShardConfig(max_stack_bytes=130),
        )
        assert [shard.sites for shard in plan.shards] == [("a", "b"), ("c",)]
        assert plan.peak_stack_bytes == 120

    def test_oversized_site_gets_singleton_shard(self):
        plan = plan_shards(
            sites=["big", "small"],
            ranks=[4, 4],
            stack_bytes=[999, 10],
            config=ShardConfig(max_stack_bytes=100),
        )
        assert [shard.sites for shard in plan.shards] == [("big",), ("small",)]

    def test_request_order_preserved_within_groups(self):
        plan = plan_shards(
            sites=["s0", "s1", "s2", "s3", "s4"],
            ranks=[5, 4, 5, 4, 5],
            stack_bytes=[1] * 5,
            config=ShardConfig(max_stack_bytes=None),
            indices=[10, 11, 12, 13, 14],
        )
        by_rank = {shard.rank: shard for shard in plan.shards}
        assert by_rank[5].members == (10, 12, 14)
        assert by_rank[4].members == (11, 13)

    def test_parallel_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="parallel"):
            plan_shards(["a"], [4, 4], [10])
        with pytest.raises(ValueError, match="indices"):
            plan_shards(["a"], [4], [10], indices=[1, 2])

    def test_empty_plan(self):
        plan = plan_shards([], [], [])
        assert plan.shard_count == 0
        assert plan.peak_stack_bytes == 0
        assert plan.site_count == 0

    def test_mark_executed(self):
        plan = plan_shards(["a", "b"], [4, 3], [10, 10])
        executed = mark_executed(plan, 1, sweeps=7, fallback=True)
        assert executed.shards[1].sweeps == 7
        assert executed.shards[1].fallback is True
        assert executed.shards[0].sweeps == 0
        assert executed.summary()["fallback_shards"] == 1.0

    def test_plan_json_round_trip(self):
        plan = plan_shards(
            ["a", "b", "c"], [4, 4, 3], [10, 20, 30],
            config=ShardConfig(max_stack_bytes=25),
        )
        plan = mark_executed(plan, 0, sweeps=3)
        assert ShardPlan.from_json(plan.to_json()) == plan

    def test_corrupt_plan_json_rejected(self):
        with pytest.raises(ValueError, match="corrupt shard plan"):
            ShardPlan.from_json({"shards": [{"index": 0}], "max_stack_bytes": None})


class TestServiceSharding:
    @pytest.fixture(scope="class")
    def fleet_requests(self):
        return synthesize_fleet(
            6, link_count=(3, 4), locations_per_link=4, seed=21
        )

    def test_unsharded_plan_is_one_shard_per_rank_group(self, fleet_requests):
        service = UpdateService()
        service.update_fleet(fleet_requests)
        plan = service.last_plan
        assert plan.max_stack_bytes is None
        assert plan.shard_count == 2  # ranks 3 and 4
        assert plan.site_count == len(fleet_requests)

    def test_budget_bounds_peak_stack_bytes(self, fleet_requests):
        unbounded = UpdateService()
        unbounded.update_fleet(fleet_requests)
        budget = unbounded.last_plan.peak_stack_bytes // 2
        sharded = UpdateService()
        sharded.update_fleet(fleet_requests, shards=ShardConfig(max_stack_bytes=budget))
        plan = sharded.last_plan
        assert plan.shard_count > unbounded.last_plan.shard_count
        assert plan.peak_stack_bytes <= budget
        assert plan.site_count == len(fleet_requests)

    def test_every_shard_records_sweeps(self, fleet_requests):
        service = UpdateService()
        service.update_fleet(fleet_requests, shards=1)  # singleton shards
        plan = service.last_plan
        assert plan.shard_count == len(fleet_requests)
        assert all(shard.sweeps >= 1 for shard in plan.shards)
        assert not any(shard.fallback for shard in plan.shards)
        assert service.last_stacked_sweeps == max(s.sweeps for s in plan.shards)

    def test_reports_stay_in_request_order(self, fleet_requests):
        service = UpdateService()
        reports = service.update_fleet(fleet_requests, shards=1)
        assert [r.site for r in reports] == [r.site for r in fleet_requests]

    def test_empty_fleet_clears_plan(self):
        service = UpdateService()
        assert service.update_fleet([]) == []
        assert service.last_plan is None
        assert service.last_stacked_sweeps == 0


class TestShardedDriver:
    def test_run_sharded_sweeps_matches_per_shard_lockstep(self):
        rng = np.random.default_rng(3)
        from repro.core.self_augmented import SelfAugmentedConfig, SweepState

        def make_states():
            states = []
            for k in range(4):
                links, width = 3, 4
                truth = rng_states[k] @ rng_loads[k]
                mask = (masks[k] < 0.7).astype(float)
                config = SelfAugmentedConfig(
                    rank=3,
                    regularization=0.5,
                    max_iterations=5,
                    use_structure_constraint=False,
                )
                states.append(SweepState(truth * mask, mask, width, config=config, rng=k))
            return states

        rng_states = [rng.normal(size=(3, 2)) for _ in range(4)]
        rng_loads = [rng.normal(size=(2, 12)) for _ in range(4)]
        masks = [rng.random((3, 12)) for _ in range(4)]

        sharded = make_states()
        sweeps = run_sharded_sweeps([sharded[:2], sharded[2:]])
        assert len(sweeps) == 2
        solo = make_states()
        for state in solo:
            run_sharded_sweeps([[state]])
        for a, b in zip(sharded, solo):
            np.testing.assert_array_equal(a.finalize().estimate, b.finalize().estimate)

    def test_sweep_stack_nbytes_uses_column_count(self):
        from repro.core.self_augmented import SelfAugmentedConfig, SweepState

        rng = np.random.default_rng(0)
        observed = rng.normal(size=(3, 12))
        mask = np.ones((3, 12))
        state = SweepState(
            observed,
            mask,
            4,
            config=SelfAugmentedConfig(rank=2, use_structure_constraint=False),
        )
        assert sweep_stack_nbytes(state) == system_stack_nbytes(12, 2)
