"""Warm-started fleet refreshes: ``update_fleet(..., warm_from=...)``.

Covers the service-level warm-start seam end to end: unchanged fleets
converging without sweeps bit for bit, the per-site ``sweeps_saved``
accounting, cold fallbacks when the previous report cannot seed a site,
parity between the serial and process executors, and the wire round-trip
of warm factors on requests and ``warm_started`` / ``sweeps_saved`` on
reports.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.core.self_augmented import SelfAugmentedConfig
from repro.core.updater import UpdaterConfig
from repro.io.wire import load_report, load_requests, save_report, save_requests
from repro.service.executor import ProcessExecutor
from repro.service.service import UpdateService
from repro.service.synthetic import synthesize_fleet
from repro.service.types import FleetReport, WarmFactors


@pytest.fixture(scope="module")
def base_generation():
    """A small fleet plus its cold refresh (the previous generation)."""
    requests = synthesize_fleet(
        4,
        elapsed_days=45.0,
        seed=11,
        link_count=3,
        locations_per_link=4,
        updater=UpdaterConfig(
            solver=SelfAugmentedConfig(max_iterations=60, tolerance=1e-4)
        ),
    )
    service = UpdateService()
    reports = service.update_fleet(requests)
    report = FleetReport(elapsed_days=45.0, reports=tuple(reports))
    return requests, report


class TestWarmFrom:
    def test_unchanged_fleet_converges_without_sweeps_bit_identical(
        self, base_generation
    ):
        requests, base = base_generation
        service = UpdateService()
        warm = service.update_fleet(requests, warm_from=base)
        for previous, report in zip(base.reports, warm):
            assert report.warm_started
            assert report.sweeps == 0
            np.testing.assert_array_equal(previous.estimate, report.estimate)
            np.testing.assert_array_equal(
                previous.result.solver.left, report.result.solver.left
            )
            np.testing.assert_array_equal(
                previous.result.solver.right, report.result.solver.right
            )

    def test_sweeps_saved_recorded_per_site(self, base_generation):
        requests, base = base_generation
        service = UpdateService()
        service.update_fleet(requests, warm_from=base)
        saved = service.last_sweeps_saved
        assert saved == {r.site: r.sweeps for r in base.reports}
        assert all(v > 0 for v in saved.values())

    def test_cold_run_resets_sweeps_saved(self, base_generation):
        requests, base = base_generation
        service = UpdateService()
        service.update_fleet(requests, warm_from=base)
        assert service.last_sweeps_saved
        service.update_fleet(requests)
        assert service.last_sweeps_saved == {}

    def test_cold_reports_not_warm_started(self, base_generation):
        requests, base = base_generation
        assert not any(r.warm_started for r in base.reports)

    def test_missing_site_falls_back_to_cold(self, base_generation):
        requests, base = base_generation
        shrunken = replace(base, reports=base.reports[1:])
        service = UpdateService()
        reports = service.update_fleet(requests, warm_from=shrunken)
        assert not reports[0].warm_started
        assert reports[0].sweeps > 0
        assert all(r.warm_started for r in reports[1:])
        assert requests[0].site not in service.last_sweeps_saved

    def test_explicit_warm_start_on_request_wins(self, base_generation):
        requests, base = base_generation
        previous = base.reports[0].result.solver
        explicit = replace(
            requests[0],
            warm_start=WarmFactors(
                left=previous.left,
                right=previous.right,
                objective=previous.objective,
            ),
        )
        service = UpdateService()
        reports = service.update_fleet([explicit], warm_from=base)
        assert reports[0].warm_started
        assert reports[0].sweeps == 0

    def test_warm_parity_serial_vs_process(self, base_generation):
        requests, base = base_generation
        serial = UpdateService().update_fleet(requests, warm_from=base)
        scattered = UpdateService().update_fleet(
            requests,
            shards=2,
            executor=ProcessExecutor(max_workers=2),
            warm_from=base,
        )
        for a, b in zip(serial, scattered):
            assert a.warm_started == b.warm_started
            assert a.sweeps == b.sweeps == 0
            np.testing.assert_array_equal(a.estimate, b.estimate)

    def test_fleet_report_aggregate_counts_warm_sites(self, base_generation):
        requests, base = base_generation
        service = UpdateService()
        reports = service.update_fleet(requests, warm_from=base)
        warm_report = FleetReport(
            elapsed_days=45.0,
            reports=tuple(reports),
            sweeps_saved=service.last_sweeps_saved,
        )
        summary = warm_report.aggregate()
        assert summary["warm_sites"] == len(requests)
        assert summary["sweeps_saved"] == sum(
            service.last_sweeps_saved.values()
        )


class TestWarmStartWire:
    def test_requests_round_trip_warm_factors(self, base_generation, tmp_path):
        requests, base = base_generation
        previous = base.reports[0].result.solver
        warmed = replace(
            requests[0],
            warm_start=WarmFactors(
                left=previous.left,
                right=previous.right,
                objective=previous.objective,
            ),
        )
        path = tmp_path / "requests.npz"
        save_requests(path, [warmed, requests[1]])
        loaded = load_requests(path)
        assert loaded[0].warm_start is not None
        np.testing.assert_array_equal(loaded[0].warm_start.left, previous.left)
        np.testing.assert_array_equal(
            loaded[0].warm_start.right, previous.right
        )
        assert loaded[0].warm_start.objective == previous.objective
        assert loaded[1].warm_start is None

    def test_loaded_requests_warm_start_equivalently(
        self, base_generation, tmp_path
    ):
        requests, base = base_generation
        service = UpdateService()
        warmed = [
            service._warm_request(request, base) for request in requests
        ]
        path = tmp_path / "requests.npz"
        save_requests(path, warmed)
        reports = UpdateService().update_fleet(load_requests(path))
        for previous, report in zip(base.reports, reports):
            assert report.warm_started
            assert report.sweeps == 0
            np.testing.assert_array_equal(previous.estimate, report.estimate)

    def test_report_round_trips_warm_metadata(self, base_generation, tmp_path):
        requests, base = base_generation
        service = UpdateService()
        reports = service.update_fleet(requests, warm_from=base)
        warm_report = FleetReport(
            elapsed_days=45.0,
            reports=tuple(reports),
            sweeps_saved=service.last_sweeps_saved,
        )
        path = tmp_path / "report.npz"
        save_report(path, warm_report)
        loaded = load_report(path)
        assert loaded.sweeps_saved == service.last_sweeps_saved
        assert all(r.warm_started for r in loaded.reports)
        for a, b in zip(warm_report.reports, loaded.reports):
            np.testing.assert_array_equal(a.estimate, b.estimate)

    def test_pre_delta_report_loads_cold(self, base_generation, tmp_path):
        # Reports written before the warm-start keys existed (no
        # warm_started / sweeps_saved) must load with cold defaults.
        requests, base = base_generation
        path = tmp_path / "report.npz"
        save_report(path, base)
        loaded = load_report(path)
        assert loaded.sweeps_saved == {}
        assert not any(r.warm_started for r in loaded.reports)


class TestWarmFactorsValidation:
    def test_rank_mismatch_rejected(self):
        with pytest.raises(ValueError, match="rank"):
            WarmFactors(left=np.zeros((3, 2)), right=np.zeros((12, 3)))

    def test_request_shape_mismatch_rejected(self, base_generation):
        requests, base = base_generation
        m, n = requests[0].baseline.shape
        with pytest.raises(ValueError):
            replace(
                requests[0],
                warm_start=WarmFactors(
                    left=np.zeros((m + 1, m)), right=np.zeros((n, m))
                ),
            )

    def test_shape_mismatched_previous_factors_fall_back_to_cold(
        self, base_generation
    ):
        requests, base = base_generation
        # Wreck one site's previous factors so _warm_request must skip it.
        first = base.reports[0]
        solver = first.result.solver
        broken_solver = replace(
            solver,
            left=solver.left[:, :1],
            right=solver.right[:, :1],
        )
        broken_report = replace(
            first, result=replace(first.result, solver=broken_solver)
        )
        broken = replace(
            base, reports=(broken_report,) + base.reports[1:]
        )
        service = UpdateService()
        reports = service.update_fleet(requests, warm_from=broken)
        assert not reports[0].warm_started
        assert all(r.warm_started for r in reports[1:])
