"""Integration tests for :mod:`repro.simulation.campaign`."""

import numpy as np
import pytest

from repro.simulation.campaign import CampaignConfig, SurveyCampaign
from repro.simulation.collector import CollectionConfig


class TestCampaignConfig:
    def test_defaults_valid(self):
        CampaignConfig()

    def test_requires_day_zero(self):
        with pytest.raises(ValueError):
            CampaignConfig(timestamps_days=(3.0, 5.0))

    def test_rejects_negative_stamps(self):
        with pytest.raises(ValueError):
            CampaignConfig(timestamps_days=(0.0, -3.0))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            CampaignConfig(timestamps_days=())


class TestCampaignDatabase:
    def test_database_contains_all_stamps(self, small_campaign):
        database = small_campaign.database
        assert database.timestamps == [0.0, 45.0]

    def test_database_cached(self, small_campaign):
        assert small_campaign.database is small_campaign.database

    def test_ground_truth_lookup(self, small_campaign):
        matrix = small_campaign.ground_truth(45.0)
        assert matrix.shape == small_campaign.database.original.shape

    def test_fingerprints_drift_between_stamps(self, small_campaign):
        database = small_campaign.database
        drift = database.drift_between(0.0, 45.0)
        assert drift > 0.5  # the paper observes multi-dB long-term shifts


class TestCampaignUpdate:
    def test_run_update_improves_over_stale(self, small_campaign):
        database = small_campaign.database
        ground_truth = database.get(45.0)
        result = small_campaign.run_update(45.0)
        assert result.matrix.reconstruction_error_db(ground_truth) < (
            database.original.reconstruction_error_db(ground_truth)
        )

    def test_run_update_with_custom_references(self, small_campaign):
        result = small_campaign.run_update(45.0, reference_indices=[0, 3, 7, 11])
        assert result.matrix.shape == small_campaign.database.original.shape

    def test_make_updater_uses_original(self, small_campaign):
        updater = small_campaign.make_updater()
        assert updater.baseline is small_campaign.database.original


class TestCampaignLocalization:
    def test_sample_test_locations_unique(self, small_campaign):
        indices = small_campaign.sample_test_locations(10)
        assert len(set(indices.tolist())) == len(indices)

    def test_sample_rejects_bad_count(self, small_campaign):
        with pytest.raises(ValueError):
            small_campaign.sample_test_locations(0)

    def test_online_measurements_shape(self, small_campaign):
        batch = small_campaign.online_measurements([0, 1, 2], 45.0)
        assert batch.shape == (3, small_campaign.deployment.link_count)

    def test_localization_errors_non_negative(self, small_campaign):
        indices = small_campaign.sample_test_locations(6)
        errors = small_campaign.localization_errors(
            small_campaign.ground_truth(45.0), indices, 45.0
        )
        assert errors.shape == (6,)
        assert np.all(errors >= 0.0)

    def test_custom_localizer_factory(self, small_campaign):
        from repro.localization.knn import KNNLocalizer

        indices = small_campaign.sample_test_locations(5)
        errors = small_campaign.localization_errors(
            small_campaign.ground_truth(45.0),
            indices,
            45.0,
            localizer_factory=lambda matrix, locations: KNNLocalizer(matrix, locations),
        )
        assert errors.shape == (5,)
