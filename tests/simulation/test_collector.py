"""Unit tests for :mod:`repro.simulation.collector`."""

import numpy as np
import pytest

from repro.simulation.collector import CollectionConfig, MeasurementCollector


class TestCollectionConfig:
    def test_defaults_valid(self):
        CollectionConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [{"survey_samples": 0}, {"reference_samples": 0}, {"online_samples": 0}],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            CollectionConfig(**kwargs)


class TestSurvey:
    def test_fingerprint_shape(self, small_campaign):
        matrix = small_campaign.collector.survey_fingerprint(elapsed_days=0.0, samples=2)
        deployment = small_campaign.deployment
        assert matrix.shape == (deployment.link_count, deployment.location_count)

    def test_own_link_sees_large_decrease(self, small_campaign):
        collector = small_campaign.collector
        matrix = collector.survey_fingerprint(elapsed_days=0.0, samples=3)
        deployment = small_campaign.deployment
        baseline = np.array(
            [deployment.channel.baseline_rss_dbm(i, 0.0) for i in range(deployment.link_count)]
        )
        # For every column, the own-link RSS should sit several dB below the
        # target-free baseline of that link.
        for j in range(deployment.location_count):
            own = deployment.link_of_location(j)
            assert matrix.values[own, j] < baseline[own] - 2.0

    def test_far_link_close_to_baseline(self, small_campaign):
        collector = small_campaign.collector
        matrix = collector.survey_fingerprint(elapsed_days=0.0, samples=3)
        deployment = small_campaign.deployment
        baseline = deployment.channel.baseline_rss_dbm(3, 0.0)
        j = next(iter(deployment.stripe_indices(0)))
        assert abs(matrix.values[3, j] - baseline) < 2.5


class TestNoDecreaseAndReference:
    def test_no_decrease_respects_mask(self, small_campaign):
        observed, mask = small_campaign.collector.collect_no_decrease(elapsed_days=0.0)
        assert observed.shape == mask.shape
        np.testing.assert_allclose(observed[mask == 0.0], 0.0)
        assert np.all(observed[mask == 1.0] < 0.0)

    def test_reference_matrix_shape(self, small_campaign):
        reference = small_campaign.collector.collect_reference([0, 5, 10], elapsed_days=0.0)
        assert reference.shape == (small_campaign.deployment.link_count, 3)

    def test_reference_rejects_bad_indices(self, small_campaign):
        with pytest.raises(ValueError):
            small_campaign.collector.collect_reference([0, 0], elapsed_days=0.0)
        with pytest.raises(ValueError):
            small_campaign.collector.collect_reference([9999], elapsed_days=0.0)

    def test_reference_close_to_ground_truth_column(self, small_campaign, small_database):
        truth = small_database.get(45.0)
        reference = small_campaign.collector.collect_reference([2], elapsed_days=45.0, samples=10)
        assert np.abs(reference[:, 0] - truth.values[:, 2]).mean() < 2.5

    def test_partial_survey_fraction(self, small_campaign, rng):
        observed, mask = small_campaign.collector.collect_partial_survey(
            0.5, elapsed_days=0.0, rng=rng
        )
        surveyed_columns = int((mask.sum(axis=0) > 0).sum())
        expected = round(0.5 * small_campaign.deployment.location_count)
        assert surveyed_columns == expected
        np.testing.assert_allclose(observed[mask == 0.0], 0.0)

    def test_partial_survey_rejects_bad_fraction(self, small_campaign):
        with pytest.raises(ValueError):
            small_campaign.collector.collect_partial_survey(0.0)


class TestOnline:
    def test_online_measurement_shape(self, small_campaign):
        vector = small_campaign.collector.online_measurement(3, elapsed_days=0.0)
        assert vector.shape == (small_campaign.deployment.link_count,)

    def test_online_rejects_bad_index(self, small_campaign):
        with pytest.raises(ValueError):
            small_campaign.collector.online_measurement(10_000)

    def test_online_batch_shape(self, small_campaign):
        batch = small_campaign.collector.online_batch([0, 1, 2], elapsed_days=0.0)
        assert batch.shape == (3, small_campaign.deployment.link_count)

    def test_online_measurement_resembles_fingerprint(self, small_campaign, small_database):
        truth = small_database.original
        vector = small_campaign.collector.online_measurement(5, elapsed_days=0.0, samples=10)
        assert np.abs(vector - truth.values[:, 5]).mean() < 2.5
