"""Unit tests for :mod:`repro.simulation.labor` (labor-cost model)."""

import numpy as np
import pytest

from repro.simulation.labor import LaborCostConfig, LaborCostModel


class TestLaborCostConfig:
    def test_defaults_match_paper_constants(self):
        config = LaborCostConfig()
        assert config.moving_time_s == 5.0
        assert config.collection_interval_s == 0.5
        assert config.traditional_samples == 50
        assert config.iupdater_samples == 5

    @pytest.mark.parametrize(
        "kwargs",
        [{"collection_interval_s": 0.0}, {"traditional_samples": 0}, {"iupdater_samples": 0}],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            LaborCostConfig(**kwargs)


class TestUpdateCosts:
    def test_iupdater_office_cost_matches_paper(self):
        # 7 moves x 5 s + 5 samples x 0.5 s x 8 locations = 55 s.
        model = LaborCostModel()
        cost = model.iupdater_cost(8)
        assert cost.seconds == pytest.approx(55.0)

    def test_traditional_office_cost_matches_paper(self):
        # 93 moves x 5 s + 50 samples x 0.5 s x 94 locations = 46.9 min.
        model = LaborCostModel()
        cost = model.traditional_cost(94)
        assert cost.minutes == pytest.approx(46.9, abs=0.1)

    def test_saving_fractions_match_paper(self):
        model = LaborCostModel()
        assert model.saving_fraction(94, 8) == pytest.approx(0.979, abs=0.005)
        assert model.saving_fraction(94, 8, traditional_samples=5) == pytest.approx(
            0.921, abs=0.005
        )

    def test_cost_units_consistent(self):
        cost = LaborCostModel().update_cost(10, 5)
        assert cost.minutes == pytest.approx(cost.seconds / 60.0)
        assert cost.hours == pytest.approx(cost.seconds / 3600.0)

    def test_invalid_counts_rejected(self):
        model = LaborCostModel()
        with pytest.raises(ValueError):
            model.update_cost(0, 5)
        with pytest.raises(ValueError):
            model.update_cost(5, 0)


class TestCostVersusArea:
    def test_traditional_grows_faster_than_iupdater(self):
        model = LaborCostModel()
        curves = model.cost_versus_area(94, 8, scale_factors=range(1, 11))
        traditional = curves["traditional_hours"]
        iupdater = curves["iupdater_hours"]
        assert np.all(traditional > iupdater)
        # Growth ratio over the sweep: quadratic vs roughly linear.
        assert traditional[-1] / traditional[0] > 50
        assert iupdater[-1] / iupdater[0] < 25

    def test_monotone_in_scale(self):
        curves = LaborCostModel().cost_versus_area(94, 8, scale_factors=[1, 2, 4, 8])
        assert np.all(np.diff(curves["traditional_hours"]) > 0)
        assert np.all(np.diff(curves["iupdater_hours"]) > 0)

    def test_invalid_arguments_rejected(self):
        model = LaborCostModel()
        with pytest.raises(ValueError):
            model.cost_versus_area(0, 8, [1, 2])
        with pytest.raises(ValueError):
            model.cost_versus_area(94, 8, [0.0])
