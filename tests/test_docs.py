"""Docs drift guards: the documentation must track the code it describes.

Extends the ``docs/EXPERIMENTS.md`` sync-test pattern
(``tests/experiments/test_config_and_runner.py``) to the whole doc set:
every public symbol the package exports must be mentioned in the API
reference, and every internal link in README / docs must resolve to a file
that exists.  These run in tier-1, so a PR that adds an export or moves a
page without updating the docs fails fast.
"""

import re
from pathlib import Path

import pytest

import repro

REPO_ROOT = Path(__file__).resolve().parents[1]
DOC_PAGES = sorted((REPO_ROOT / "docs").glob("*.md"))
LINKED_PAGES = [REPO_ROOT / "README.md", *DOC_PAGES]

# Markdown inline links: [text](target), skipping images and code spans.
_LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")


def _internal_links(page: Path):
    """Yield (target, resolved_path) for every relative link on the page."""
    for target in _LINK.findall(page.read_text()):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part = target.split("#", 1)[0]
        if not path_part:  # pure same-page anchor
            continue
        yield target, (page.parent / path_part).resolve()


class TestApiReferenceSync:
    def test_every_public_symbol_documented(self):
        """docs/API.md must mention every name exported from ``repro``."""
        text = (REPO_ROOT / "docs" / "API.md").read_text()
        missing = [
            name
            for name in repro.__all__
            if not name.startswith("__") and name not in text
        ]
        assert not missing, (
            f"docs/API.md is missing public symbols: {missing}; "
            "document them (or stop exporting them from repro/__init__.py)"
        )

    def test_all_documented_pages_exist(self):
        """The doc set itself must contain the pages README promises."""
        names = {page.name for page in DOC_PAGES}
        assert {
            "API.md",
            "ARCHITECTURE.md",
            "WIRE_FORMAT.md",
            "EXPERIMENTS.md",
        } <= names


class TestInternalLinks:
    @pytest.mark.parametrize(
        "page", LINKED_PAGES, ids=[p.name for p in LINKED_PAGES]
    )
    def test_links_resolve(self, page):
        broken = [
            target
            for target, resolved in _internal_links(page)
            if not resolved.exists()
        ]
        assert not broken, f"{page.name} has broken internal links: {broken}"

    def test_pages_actually_cross_link(self):
        """The link checker must be checking something real."""
        total = sum(len(list(_internal_links(page))) for page in LINKED_PAGES)
        assert total >= 10, f"only {total} internal links found — regex drift?"


class TestCliDocsSync:
    def test_workers_flag_documented(self):
        """The distributed-execution flag must be in the CLI's own docs."""
        api = (REPO_ROOT / "docs" / "API.md").read_text()
        assert "--workers" in api
        from repro.experiments.cli import build_parser

        help_text = build_parser().format_help()
        assert "fleet" in help_text

    def test_query_subcommand_documented(self):
        """The read-path CLI and its serving flags must be in the API docs."""
        api = (REPO_ROOT / "docs" / "API.md").read_text()
        for flag in ("query export", "query run", "query bench"):
            assert flag in api, f"docs/API.md does not document `{flag}`"
        for flag in ("--matcher", "--backend", "--qps-target", "--batch-sizes"):
            assert flag in api, f"docs/API.md does not document `{flag}`"
        from repro.experiments.cli import build_parser

        assert "query" in build_parser().format_help()


class TestDaemonDocsSync:
    def test_daemon_cli_documented(self):
        """Every daemon subcommand and its serving flags must be in API.md."""
        api = (REPO_ROOT / "docs" / "API.md").read_text()
        for sub in (
            "daemon start",
            "daemon submit",
            "daemon status",
            "daemon result",
            "daemon stop",
        ):
            assert sub in api, f"docs/API.md does not document `{sub}`"
        for flag in ("--spool", "--job-workers", "--pool-workers", "--wait"):
            assert flag in api, f"docs/API.md does not document `{flag}`"
        from repro.experiments.cli import build_parser

        assert "daemon" in build_parser().format_help()

    def test_http_routes_documented(self):
        """The HTTP API table must cover every route the server exposes."""
        api = (REPO_ROOT / "docs" / "API.md").read_text()
        for route in (
            "/api/health",
            "/api/jobs",
            "/api/localize",
            "/api/drain",
        ):
            assert route in api, f"docs/API.md does not document `{route}`"

    def test_lifecycle_in_architecture(self):
        """ARCHITECTURE.md must describe the daemon lifecycle with its
        actual class names and both kill-safety invariants."""
        text = (REPO_ROOT / "docs" / "ARCHITECTURE.md").read_text()
        for name in (
            "Coordinator",
            "JobQueue",
            "DaemonServer",
            "PooledProcessExecutor",
        ):
            assert name in text, f"docs/ARCHITECTURE.md is missing {name}"
        for phrase in ("job queue", "publish", "drain"):
            assert phrase in text.lower(), (
                f"docs/ARCHITECTURE.md lifecycle section lost {phrase!r}"
            )

    def test_journal_format_documented(self):
        """WIRE_FORMAT.md must describe the journal with its format tag and
        every job state the queue can journal."""
        text = (REPO_ROOT / "docs" / "WIRE_FORMAT.md").read_text()
        assert "repro-daemon-journal" in text
        from repro.io.jobs import JOB_STATES

        for state in JOB_STATES:
            assert f"`{state}`" in text, (
                f"docs/WIRE_FORMAT.md does not document job state {state!r}"
            )

    def test_readme_runs_as_a_service(self):
        """README must keep the run-it-as-a-service quickstart."""
        text = (REPO_ROOT / "README.md").read_text()
        assert "daemon start" in text
        assert "daemon submit" in text
        assert "DaemonClient" in text


class TestIncrementalDocsSync:
    def test_warm_start_api_documented(self):
        """The warm-start seam must appear in API.md with its real names."""
        api = (REPO_ROOT / "docs" / "API.md").read_text()
        for name in (
            "warm_from",
            "WarmFactors",
            "warm_started",
            "sweeps_saved",
            "last_sweeps_saved",
            'init="svd"',
        ):
            assert name in api, f"docs/API.md does not document {name!r}"

    def test_delta_format_documented(self):
        """WIRE_FORMAT.md must spec the delta payload: tag, modes, gating."""
        text = (REPO_ROOT / "docs" / "WIRE_FORMAT.md").read_text()
        assert "repro-fleet-delta" in text
        from repro.io.delta import _SITE_MODES

        for mode in _SITE_MODES:
            assert f"`{mode}`" in text, (
                f"docs/WIRE_FORMAT.md does not document delta mode {mode!r}"
            )
        for key in ("base_fingerprint", "__rows", "__data"):
            assert key in text, f"docs/WIRE_FORMAT.md is missing {key!r}"
        # The new optional request/report keys must be specified too.
        for key in ("warm_left", "warm_right", "warm_started", "sweeps_saved"):
            assert key in text, f"docs/WIRE_FORMAT.md is missing {key!r}"

    def test_incremental_cli_documented(self):
        """`fleet run --warm-from` and `fleet diff` must be in API.md and
        actually exist on the parser."""
        api = (REPO_ROOT / "docs" / "API.md").read_text()
        for flag in ("--warm-from", "fleet diff", "--base", "--delta"):
            assert flag in api, f"docs/API.md does not document `{flag}`"
        from repro.experiments.cli import build_parser

        help_text = build_parser().format_help()
        assert "fleet" in help_text

    def test_refresh_loop_in_architecture(self):
        """ARCHITECTURE.md must describe the steady-state refresh loop."""
        text = (REPO_ROOT / "docs" / "ARCHITECTURE.md").read_text()
        for name in ("warm_start", "warm_from", "save_delta", "apply_delta"):
            assert name in text, f"docs/ARCHITECTURE.md is missing {name}"

    def test_daemon_warm_cache_documented(self):
        """DaemonConfig.warm_refresh must be documented and must exist."""
        api = (REPO_ROOT / "docs" / "API.md").read_text()
        assert "warm_refresh" in api
        from repro.daemon import DaemonConfig

        assert DaemonConfig().warm_refresh is True


class TestRemoteDocsSync:
    def test_remote_api_documented(self):
        """The remote executor surface must appear in API.md by name."""
        api = (REPO_ROOT / "docs" / "API.md").read_text()
        for name in (
            "RemoteExecutor",
            "WorkerServer",
            "FaultPlan",
            "RemoteShardError",
            "InvalidWorkerCountError",
            "straggler_after",
            "max_attempts",
            "shard_fingerprint",
        ):
            assert name in api, f"docs/API.md does not document {name!r}"

    def test_remote_cli_documented(self):
        """`fleet workers serve` and the remote run flags must be in API.md
        and actually exist on the parser."""
        api = (REPO_ROOT / "docs" / "API.md").read_text()
        for flag in (
            "fleet workers serve",
            "--endpoints",
            "--fault",
            "--straggler-after",
        ):
            assert flag in api, f"docs/API.md does not document `{flag}`"
        from repro.experiments.cli import build_parser

        help_text = build_parser().format_help()
        assert "fleet" in help_text

    def test_fault_kinds_documented(self):
        """Every injectable fault class must be named in API.md."""
        from repro.service.remote import FAULT_KINDS

        api = (REPO_ROOT / "docs" / "API.md").read_text()
        for kind in FAULT_KINDS:
            assert f"`{kind}`" in api, (
                f"docs/API.md does not document the {kind!r} fault"
            )

    def test_transport_layer_in_architecture(self):
        """ARCHITECTURE.md must describe the remote transport with its
        actual class names, the timeline and the failure state machine."""
        text = (REPO_ROOT / "docs" / "ARCHITECTURE.md").read_text()
        for name in (
            "RemoteExecutor",
            "WorkerServer",
            "FaultPlan",
            "RemoteShardError",
            "shard_fingerprint",
        ):
            assert name in text, f"docs/ARCHITECTURE.md is missing {name}"
        for phrase in ("scatter", "gather", "straggler", "failover", "retry"):
            assert phrase in text.lower(), (
                f"docs/ARCHITECTURE.md transport section lost {phrase!r}"
            )

    def test_shard_payloads_documented(self):
        """WIRE_FORMAT.md must spec both shard payload kinds with their
        real format tags and manifest keys."""
        from repro.io.wire import SHARD_RESULT_FORMAT, SHARD_TASK_FORMAT

        text = (REPO_ROOT / "docs" / "WIRE_FORMAT.md").read_text()
        assert SHARD_TASK_FORMAT in text
        assert SHARD_RESULT_FORMAT in text
        for key in (
            "fingerprint",
            "requests_payload",
            "WirePayloadError",
            "res####__estimate",
        ):
            assert key in text, f"docs/WIRE_FORMAT.md is missing {key!r}"


class TestQueryDocsSync:
    def test_matchers_and_backends_documented(self):
        """Every matcher/backend the engine accepts must appear in API.md."""
        from repro.query import BACKENDS, MATCHERS

        api = (REPO_ROOT / "docs" / "API.md").read_text()
        for name in (*MATCHERS, *BACKENDS):
            assert f'"{name}"' in api, (
                f"docs/API.md does not document the {name!r} matcher/backend"
            )

    def test_read_path_layers_in_architecture(self):
        """ARCHITECTURE.md must describe the report → index → engine → cache
        read path with its actual class names."""
        text = (REPO_ROOT / "docs" / "ARCHITECTURE.md").read_text()
        for name in (
            "QueryIndex",
            "QueryEngine",
            "GenerationStore",
            "ResultCache",
            "indexes_from_report",
        ):
            assert name in text, f"docs/ARCHITECTURE.md is missing {name}"

    def test_readme_serves_queries(self):
        """README must keep the serve-queries quickstart."""
        text = (REPO_ROOT / "README.md").read_text()
        assert "query run" in text
        assert "QueryEngine" in text
