"""Headless smoke tests for every example script.

Each example is executed as a subprocess (the way a reader would run it)
with ``REPRO_EXAMPLE_QUICK=1``, which the scripts honour by shrinking their
deployments and schedules.  The tests assert a clean exit and that the
script's headline output made it to stdout — so an API change that breaks an
example fails CI instead of silently rotting the documentation.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES_DIR = REPO_ROOT / "examples"

EXPECTED_OUTPUT = {
    "quickstart.py": "Reconstruction error vs fresh survey",
    "office_long_term_update.py": "3-month maintenance schedule",
    "multi_environment_study.py": "Fleet aggregate",
    "labor_cost_planning.py": "traditional full re-survey",
}


def example_scripts() -> list:
    return sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))


def test_every_example_has_expectations():
    """A new example script must be added to the smoke-test expectations."""
    assert example_scripts() == sorted(EXPECTED_OUTPUT)


@pytest.mark.parametrize("script", sorted(EXPECTED_OUTPUT))
def test_example_runs_headlessly(script):
    env = dict(os.environ)
    env["REPRO_EXAMPLE_QUICK"] = "1"
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
        cwd=str(REPO_ROOT),
    )
    assert completed.returncode == 0, (
        f"{script} exited with {completed.returncode}:\n{completed.stderr}"
    )
    assert EXPECTED_OUTPUT[script] in completed.stdout
