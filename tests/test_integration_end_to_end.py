"""End-to-end integration tests covering the paper's headline claims.

These tests run the full pipeline — simulate a deployment, survey a
ground-truth database, update it from a handful of reference measurements,
and localize — on a reduced-size environment so the assertions stay fast but
still exercise every module together.
"""

import numpy as np
import pytest

from repro.core.analysis import low_rank_report
from repro.localization.knn import KNNLocalizer
from repro.localization.metrics import summarize_errors
from repro.localization.omp import OMPLocalizer
from repro.simulation.labor import LaborCostModel


class TestHeadlineClaims:
    def test_fingerprint_matrix_approximately_low_rank(self, small_database):
        """Observation 1 / Fig. 5 on the simulated database."""
        for snapshot in small_database:
            report = low_rank_report(snapshot.matrix.values)
            assert report.approximately_low_rank or report.exactly_low_rank

    def test_update_recovers_drifted_database(self, small_campaign, small_database):
        """Core claim: a few reference measurements recover the stale matrix."""
        ground_truth = small_database.get(45.0)
        stale_error = small_database.original.reconstruction_error_db(ground_truth)
        result = small_campaign.run_update(45.0)
        updated_error = result.matrix.reconstruction_error_db(ground_truth)
        assert updated_error < stale_error
        assert updated_error < 3.0  # comparable to short-term RSS variation

    def test_reference_count_is_small(self, small_campaign):
        """Claim 1: reference locations ≈ rank ≈ link count << location count."""
        updater = small_campaign.make_updater()
        deployment = small_campaign.deployment
        assert len(updater.reference_indices) <= deployment.link_count
        assert len(updater.reference_indices) <= deployment.location_count // 3

    def test_localization_with_updated_matrix_beats_stale(self, small_campaign, small_database):
        """Fig. 21/22: updating the database improves localization accuracy."""
        test_indices = small_campaign.sample_test_locations(16)
        measurements = small_campaign.online_measurements(test_indices, 45.0)
        locations = small_campaign.deployment.location_array()

        def errors_for(matrix):
            localizer = OMPLocalizer(matrix, locations)
            values = []
            for row, true_index in zip(measurements, test_indices):
                estimate = localizer.localize_point(row)
                values.append(np.linalg.norm(estimate - locations[int(true_index)]))
            return summarize_errors(values)

        updated = errors_for(small_campaign.run_update(45.0).matrix)
        stale = errors_for(small_database.original)
        fresh = errors_for(small_database.get(45.0))
        assert updated.mean_m <= stale.mean_m + 0.25
        assert fresh.mean_m <= stale.mean_m + 0.25

    def test_labor_cost_saving_over_90_percent(self, small_campaign):
        """Section VI-C: updating via reference locations saves >90 % time."""
        model = LaborCostModel()
        total = small_campaign.deployment.location_count
        references = len(small_campaign.make_updater().reference_indices)
        assert model.saving_fraction(total, references) > 0.9

    def test_omp_and_knn_agree_on_clean_measurements(self, small_database):
        """Sanity cross-check of the two matchers on noiseless fingerprints."""
        matrix = small_database.original
        omp = OMPLocalizer(matrix)
        knn = KNNLocalizer(matrix)
        for j in range(0, matrix.location_count, 5):
            column = matrix.column(j)
            assert omp.localize_index(column) == j
            assert knn.localize_index(column) == j
