"""Tests of the top-level package API surface."""

import repro


class TestPublicAPI:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_names_resolvable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"{name} listed in __all__ but missing"

    def test_key_classes_exported(self):
        assert repro.IUpdater is not None
        assert repro.FingerprintMatrix is not None
        assert repro.OMPLocalizer is not None
        assert repro.SurveyCampaign is not None

    def test_environment_factories_exported(self):
        office = repro.office_environment()
        library = repro.library_environment()
        hall = repro.hall_environment()
        assert {office.name, library.name, hall.name} == {"office", "library", "hall"}

    def test_build_deployment_exported(self):
        spec = repro.office_environment(locations_per_link=4, link_count=4)
        deployment = repro.build_deployment(spec, seed=1)
        assert deployment.link_count == 4
