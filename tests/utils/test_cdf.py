"""Unit tests for :mod:`repro.utils.cdf`."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.cdf import cdf_at, empirical_cdf, median, percentile


class TestEmpiricalCDF:
    def test_values_are_sorted(self):
        cdf = empirical_cdf([3.0, 1.0, 2.0])
        np.testing.assert_allclose(cdf.values, [1.0, 2.0, 3.0])

    def test_probabilities_end_at_one(self):
        cdf = empirical_cdf([5.0, 7.0, 9.0, 11.0])
        assert cdf.probabilities[-1] == pytest.approx(1.0)
        assert np.all(np.diff(cdf.probabilities) > 0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            empirical_cdf([])

    def test_median_of_odd_count(self):
        assert empirical_cdf([1.0, 2.0, 100.0]).median == pytest.approx(2.0)

    def test_percentile_bounds_check(self):
        cdf = empirical_cdf([1.0, 2.0])
        with pytest.raises(ValueError):
            cdf.percentile(1.5)

    def test_probability_below(self):
        cdf = empirical_cdf([1.0, 2.0, 3.0, 4.0])
        assert cdf.probability_below(2.5) == pytest.approx(0.5)

    def test_as_series_returns_copies(self):
        cdf = empirical_cdf([1.0, 2.0])
        values, probabilities = cdf.as_series()
        values[0] = -99.0
        assert cdf.values[0] == 1.0
        assert probabilities.shape == cdf.probabilities.shape


class TestModuleHelpers:
    def test_percentile_helper(self):
        assert percentile([0.0, 10.0], 0.5) == pytest.approx(5.0)

    def test_median_helper(self):
        assert median([4.0, 1.0, 9.0]) == pytest.approx(4.0)

    def test_cdf_at_helper(self):
        assert cdf_at([1.0, 2.0, 3.0, 4.0], 3.0) == pytest.approx(0.75)

    @given(st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_median_between_min_and_max(self, samples):
        value = median(samples)
        assert min(samples) - 1e-9 <= value <= max(samples) + 1e-9

    @given(
        st.lists(st.floats(-1e3, 1e3, allow_nan=False), min_size=2, max_size=30),
        st.floats(0.0, 1.0),
        st.floats(0.0, 1.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_percentile_monotone_in_q(self, samples, q1, q2):
        low, high = sorted((q1, q2))
        assert percentile(samples, low) <= percentile(samples, high) + 1e-9
