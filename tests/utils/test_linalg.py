"""Unit tests for :mod:`repro.utils.linalg`."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.utils import linalg


class TestFrobeniusNorm:
    def test_matches_numpy(self):
        matrix = np.arange(12, dtype=float).reshape(3, 4)
        assert linalg.frobenius_norm(matrix) == pytest.approx(np.linalg.norm(matrix))

    def test_zero_matrix(self):
        assert linalg.frobenius_norm(np.zeros((3, 3))) == 0.0


class TestMaskedFrobeniusError:
    def test_without_mask(self):
        a = np.ones((2, 2))
        b = np.zeros((2, 2))
        assert linalg.masked_frobenius_error(a, b) == pytest.approx(2.0)

    def test_with_mask(self):
        a = np.ones((2, 2))
        b = np.zeros((2, 2))
        mask = np.array([[1.0, 0.0], [0.0, 0.0]])
        assert linalg.masked_frobenius_error(a, b, mask) == pytest.approx(1.0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            linalg.masked_frobenius_error(np.ones((2, 2)), np.ones((3, 2)))

    def test_mask_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            linalg.masked_frobenius_error(np.ones((2, 2)), np.ones((2, 2)), np.ones((3, 2)))


class TestSingularValueHelpers:
    def test_normalized_singular_values_max_is_one(self, synthetic_low_rank_matrix):
        values = linalg.normalized_singular_values(synthetic_low_rank_matrix)
        assert values[0] == pytest.approx(1.0)
        assert np.all(np.diff(values) <= 1e-12)

    def test_relative_energy_full_count_is_one(self, synthetic_low_rank_matrix):
        count = min(synthetic_low_rank_matrix.shape)
        assert linalg.relative_energy(synthetic_low_rank_matrix, count) == pytest.approx(1.0)

    def test_relative_energy_monotone_in_count(self, synthetic_low_rank_matrix):
        energies = [
            linalg.relative_energy(synthetic_low_rank_matrix, k) for k in range(1, 8)
        ]
        assert all(a <= b + 1e-12 for a, b in zip(energies, energies[1:]))

    def test_effective_rank_of_exact_low_rank(self, synthetic_low_rank_matrix):
        # mean offset adds one rank-1 component on top of the rank-3 factors
        assert linalg.effective_rank(synthetic_low_rank_matrix, 0.999) <= 4

    def test_effective_rank_zero_matrix(self):
        assert linalg.effective_rank(np.zeros((3, 3))) == 0


class TestSafeSolve:
    def test_regular_system(self):
        lhs = np.array([[2.0, 0.0], [0.0, 4.0]])
        rhs = np.array([2.0, 8.0])
        np.testing.assert_allclose(linalg.safe_solve(lhs, rhs), [1.0, 2.0])

    def test_singular_system_falls_back(self):
        lhs = np.zeros((2, 2))
        rhs = np.array([1.0, 1.0])
        solution = linalg.safe_solve(lhs, rhs)
        assert np.all(np.isfinite(solution))


class TestColumnNormalize:
    def test_columns_sum_to_one_in_absolute_value(self):
        matrix = np.array([[1.0, -2.0], [3.0, 2.0]])
        normalized = linalg.column_normalize(matrix)
        np.testing.assert_allclose(np.abs(normalized).sum(axis=0), [1.0, 1.0])

    def test_zero_column_untouched(self):
        matrix = np.array([[0.0, 1.0], [0.0, 1.0]])
        normalized = linalg.column_normalize(matrix)
        np.testing.assert_allclose(normalized[:, 0], [0.0, 0.0])


class TestProximalOperators:
    def test_soft_threshold_shrinks_towards_zero(self):
        values = np.array([-3.0, -0.5, 0.5, 3.0])
        np.testing.assert_allclose(
            linalg.soft_threshold(values, 1.0), [-2.0, 0.0, 0.0, 2.0]
        )

    def test_singular_value_threshold_reduces_rank(self, rng):
        matrix = rng.normal(size=(6, 6))
        shrunk = linalg.singular_value_threshold(matrix, 1e6)
        np.testing.assert_allclose(shrunk, np.zeros_like(matrix), atol=1e-9)

    def test_singular_value_threshold_zero_is_identity(self, rng):
        matrix = rng.normal(size=(5, 4))
        np.testing.assert_allclose(
            linalg.singular_value_threshold(matrix, 0.0), matrix, atol=1e-10
        )

    def test_l21_shrink_zeroes_small_columns(self):
        matrix = np.array([[0.1, 3.0], [0.1, 4.0]])
        shrunk = linalg.l21_column_shrink(matrix, 1.0)
        np.testing.assert_allclose(shrunk[:, 0], [0.0, 0.0])
        assert np.linalg.norm(shrunk[:, 1]) == pytest.approx(4.0)

    @given(
        hnp.arrays(
            dtype=float,
            shape=st.tuples(st.integers(2, 5), st.integers(2, 5)),
            elements=st.floats(-50, 50, allow_nan=False),
        ),
        st.floats(0.0, 10.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_l21_shrink_never_increases_column_norms(self, matrix, threshold):
        shrunk = linalg.l21_column_shrink(matrix, threshold)
        original_norms = np.linalg.norm(matrix, axis=0)
        new_norms = np.linalg.norm(shrunk, axis=0)
        assert np.all(new_norms <= original_norms + 1e-9)


class TestErrorMetrics:
    def test_mean_absolute_error(self):
        assert linalg.mean_absolute_error(np.ones(4), np.zeros(4)) == pytest.approx(1.0)

    def test_rmse_at_least_mae(self, rng):
        a = rng.normal(size=(5, 5))
        b = rng.normal(size=(5, 5))
        assert linalg.root_mean_square_error(a, b) >= linalg.mean_absolute_error(a, b) - 1e-12

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            linalg.mean_absolute_error(np.ones(3), np.ones(4))

    def test_pairwise_euclidean(self):
        a = np.array([[0.0, 0.0], [1.0, 0.0]])
        b = np.array([[0.0, 1.0]])
        distances = linalg.pairwise_euclidean(a, b)
        np.testing.assert_allclose(distances, [[1.0], [np.sqrt(2.0)]])


class TestPadRankStack:
    def test_padding_preserves_solutions(self, rng):
        lhs = rng.normal(size=(6, 3, 3))
        lhs = lhs @ np.transpose(lhs, (0, 2, 1)) + 0.2 * np.eye(3)
        rhs = rng.normal(size=(6, 3))
        padded_lhs, padded_rhs = linalg.pad_rank_stack(lhs, rhs, 5)
        assert padded_lhs.shape == (6, 5, 5)
        assert padded_rhs.shape == (6, 5)
        solutions = linalg.batched_safe_solve(padded_lhs, padded_rhs)
        reference = linalg.batched_safe_solve(lhs, rhs)
        # Leading entries match to BLAS kernel noise (padding changes the
        # matrix size, which can change the summation order); the padding
        # coordinates are exactly zero.
        np.testing.assert_allclose(solutions[:, :3], reference, atol=1e-10, rtol=0.0)
        np.testing.assert_array_equal(solutions[:, 3:], np.zeros((6, 2)))

    def test_equal_rank_is_passthrough(self, rng):
        lhs = rng.normal(size=(2, 3, 3))
        rhs = rng.normal(size=(2, 3))
        padded_lhs, padded_rhs = linalg.pad_rank_stack(lhs, rhs, 3)
        assert padded_lhs is lhs or np.shares_memory(padded_lhs, lhs)
        np.testing.assert_array_equal(padded_rhs, rhs)

    def test_shrinking_rejected(self, rng):
        with pytest.raises(ValueError):
            linalg.pad_rank_stack(np.zeros((2, 3, 3)), np.zeros((2, 3)), 2)

    def test_bad_shapes_rejected(self):
        with pytest.raises(ValueError):
            linalg.pad_rank_stack(np.zeros((2, 3, 4)), np.zeros((2, 3)), 5)
        with pytest.raises(ValueError):
            linalg.pad_rank_stack(np.zeros((2, 3, 3)), np.zeros((3, 3)), 5)


class TestStackedRankSolve:
    def make_stack(self, rng, batch, rank):
        lhs = rng.normal(size=(batch, rank, rank))
        lhs = lhs @ np.transpose(lhs, (0, 2, 1)) + 0.2 * np.eye(rank)
        rhs = rng.normal(size=(batch, rank))
        return lhs, rhs

    def test_heterogeneous_stacks_match_separate_solves(self, rng):
        systems = [
            self.make_stack(rng, batch, rank)
            for batch, rank in [(7, 3), (4, 5), (9, 2), (5, 3)]
        ]
        stacked = linalg.stacked_rank_solve(systems)
        assert len(stacked) == 4
        for (lhs, rhs), solution in zip(systems, stacked):
            expected = linalg.batched_safe_solve(lhs, rhs)
            assert solution.shape == rhs.shape
            # The default "group" strategy is bit-exact per stack, including
            # the two rank-3 stacks sharing one concatenated solve.
            np.testing.assert_array_equal(solution, expected)

    def test_pad_strategy_matches_to_kernel_noise(self, rng):
        systems = [
            self.make_stack(rng, batch, rank)
            for batch, rank in [(7, 3), (4, 5), (9, 2)]
        ]
        stacked = linalg.stacked_rank_solve(systems, strategy="pad")
        for (lhs, rhs), solution in zip(systems, stacked):
            expected = linalg.batched_safe_solve(lhs, rhs)
            np.testing.assert_allclose(solution, expected, atol=1e-10, rtol=0.0)

    def test_unknown_strategy_rejected(self, rng):
        with pytest.raises(ValueError, match="strategy"):
            linalg.stacked_rank_solve([self.make_stack(rng, 2, 2)], strategy="merge")

    def test_single_stack_short_circuits(self, rng):
        lhs, rhs = self.make_stack(rng, 5, 4)
        [solution] = linalg.stacked_rank_solve([(lhs, rhs)])
        np.testing.assert_array_equal(solution, linalg.batched_safe_solve(lhs, rhs))

    def test_empty_input(self):
        assert linalg.stacked_rank_solve([]) == []

    def test_singular_slice_falls_back(self, rng):
        good_lhs, good_rhs = self.make_stack(rng, 3, 2)
        singular = (np.zeros((1, 4, 4)), np.ones((1, 4)))
        solutions = linalg.stacked_rank_solve([(good_lhs, good_rhs), singular])
        np.testing.assert_allclose(
            solutions[0], linalg.batched_safe_solve(good_lhs, good_rhs), atol=1e-12
        )
        assert np.all(np.isfinite(solutions[1]))

    def test_singular_stack_does_not_perturb_same_rank_cotenant(self, rng):
        """A singular slice in one site's stack must leave an equal-rank
        co-tenant's solutions bit-identical to its standalone solve."""
        good_lhs, good_rhs = self.make_stack(rng, 5, 3)
        singular = (np.zeros((2, 3, 3)), np.ones((2, 3)))
        solutions = linalg.stacked_rank_solve([(good_lhs, good_rhs), singular])
        np.testing.assert_array_equal(
            solutions[0], linalg.batched_safe_solve(good_lhs, good_rhs)
        )
        assert np.all(np.isfinite(solutions[1]))

    def test_singular_stack_in_pad_strategy_keeps_cotenant_finite(self, rng):
        good = self.make_stack(rng, 4, 2)
        singular = (np.zeros((2, 3, 3)), np.ones((2, 3)))
        solutions = linalg.stacked_rank_solve([good, singular], strategy="pad")
        np.testing.assert_array_equal(
            solutions[0], linalg.batched_safe_solve(*good)
        )
        assert np.all(np.isfinite(solutions[1]))

    def test_bad_shapes_rejected(self, rng):
        good = self.make_stack(rng, 2, 3)
        with pytest.raises(ValueError):
            linalg.stacked_rank_solve([good, (np.zeros((2, 3, 4)), np.zeros((2, 3)))])
        with pytest.raises(ValueError):
            linalg.stacked_rank_solve([good, (np.zeros((2, 3, 3)), np.zeros((3, 3)))])
