"""Unit tests for :mod:`repro.utils.random`."""

import numpy as np
import pytest

from repro.utils.random import derive_rng, make_rng, spawn_rngs


class TestMakeRng:
    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)

    def test_integer_seed_is_reproducible(self):
        assert make_rng(42).integers(0, 1000) == make_rng(42).integers(0, 1000)

    def test_existing_generator_passthrough(self):
        generator = np.random.default_rng(7)
        assert make_rng(generator) is generator


class TestSpawnRngs:
    def test_count_respected(self):
        assert len(spawn_rngs(1, 5)) == 5

    def test_children_are_independent(self):
        children = spawn_rngs(1, 2)
        first = children[0].integers(0, 2**31)
        second = children[1].integers(0, 2**31)
        assert first != second

    def test_reproducible_from_same_seed(self):
        a = [g.integers(0, 1000) for g in spawn_rngs(3, 4)]
        b = [g.integers(0, 1000) for g in spawn_rngs(3, 4)]
        assert a == b

    def test_invalid_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, 0)


class TestDeriveRng:
    def test_same_keys_same_stream(self):
        a = derive_rng(5, 1, 2).integers(0, 10**9)
        b = derive_rng(5, 1, 2).integers(0, 10**9)
        assert a == b

    def test_different_keys_different_stream(self):
        a = derive_rng(5, 1, 2).integers(0, 10**9)
        b = derive_rng(5, 1, 3).integers(0, 10**9)
        assert a != b

    def test_large_keys_do_not_overflow(self):
        generator = derive_rng(2**40, 2**50, 2**60)
        assert 0 <= generator.random() < 1

    def test_none_seed_supported(self):
        assert isinstance(derive_rng(None, 1), np.random.Generator)
