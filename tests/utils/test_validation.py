"""Unit tests for :mod:`repro.utils.validation`."""

import numpy as np
import pytest

from repro.utils import validation


class TestAsFloatArray:
    def test_list_converted(self):
        array = validation.as_float_array([1, 2, 3])
        assert array.dtype == float

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            validation.as_float_array([1.0, np.nan])

    def test_non_numeric_rejected(self):
        with pytest.raises(TypeError):
            validation.as_float_array(["a", "b"])


class TestCheck2D:
    def test_accepts_matrix(self):
        matrix = validation.check_2d([[1.0, 2.0], [3.0, 4.0]])
        assert matrix.shape == (2, 2)

    def test_rejects_vector(self):
        with pytest.raises(ValueError):
            validation.check_2d([1.0, 2.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            validation.check_2d(np.zeros((0, 3)))


class TestCheck1D:
    def test_accepts_vector(self):
        assert validation.check_1d([1.0, 2.0]).shape == (2,)

    def test_rejects_matrix(self):
        with pytest.raises(ValueError):
            validation.check_1d([[1.0], [2.0]])


class TestCheckMatchingShapes:
    def test_matching_ok(self):
        validation.check_matching_shapes(np.zeros((2, 2)), np.ones((2, 2)))

    def test_mismatch_raises(self):
        with pytest.raises(ValueError):
            validation.check_matching_shapes(np.zeros((2, 2)), np.ones((2, 3)))


class TestScalarChecks:
    @pytest.mark.parametrize("value", [1.0, 0.5, 1e-9])
    def test_check_positive_accepts(self, value):
        assert validation.check_positive(value) == value

    @pytest.mark.parametrize("value", [0.0, -1.0, float("inf"), float("nan")])
    def test_check_positive_rejects(self, value):
        with pytest.raises(ValueError):
            validation.check_positive(value)

    def test_check_non_negative_accepts_zero(self):
        assert validation.check_non_negative(0.0) == 0.0

    def test_check_non_negative_rejects_negative(self):
        with pytest.raises(ValueError):
            validation.check_non_negative(-0.1)

    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_check_probability_accepts(self, value):
        assert validation.check_probability(value) == value

    @pytest.mark.parametrize("value", [-0.1, 1.1, float("nan")])
    def test_check_probability_rejects(self, value):
        with pytest.raises(ValueError):
            validation.check_probability(value)


class TestIndexChecks:
    def test_check_index_accepts_valid(self):
        assert validation.check_index(3, 5) == 3

    @pytest.mark.parametrize("index", [-1, 5, 99])
    def test_check_index_rejects_out_of_range(self, index):
        with pytest.raises(ValueError):
            validation.check_index(index, 5)

    def test_check_indices_accepts_unique(self):
        result = validation.check_indices([0, 2, 4], 5)
        np.testing.assert_array_equal(result, [0, 2, 4])

    def test_check_indices_rejects_duplicates(self):
        with pytest.raises(ValueError):
            validation.check_indices([1, 1], 5)

    def test_check_indices_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            validation.check_indices([0, 7], 5)

    def test_check_indices_rejects_empty(self):
        with pytest.raises(ValueError):
            validation.check_indices([], 5)
